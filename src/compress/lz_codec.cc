#include "compress/lz_codec.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace rstore {
namespace lz {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 1u << 20;  // 1 MB window: chunks are ~1 MB.
constexpr int kHashBits = 16;
constexpr int kMaxChainProbes = 32;

inline uint32_t Hash4(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline size_t MatchLength(const unsigned char* a, const unsigned char* b,
                          const unsigned char* end) {
  const unsigned char* start = b;
  while (b < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<size_t>(b - start);
}

void EmitLiterals(const unsigned char* base, size_t start, size_t end,
                  std::string* out) {
  if (end <= start) return;
  size_t len = end - start;
  PutVarint64(out, (len << 1) | 0);
  out->append(reinterpret_cast<const char*>(base + start), len);
}

}  // namespace

void Compress(Slice input, std::string* output) {
  output->clear();
  PutVarint64(output, input.size());
  if (input.empty()) return;

  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(input.data());
  const size_t n = input.size();
  const unsigned char* end = data + n;

  if (n < kMinMatch + 4) {
    EmitLiterals(data, 0, n, output);
    return;
  }

  // head[h] = most recent position with hash h; prev[i] = previous position
  // in i's chain. Positions are offset by +1 so 0 means "empty".
  std::vector<uint32_t> head(1u << kHashBits, 0);
  std::vector<uint32_t> prev(n, 0);

  size_t literal_start = 0;
  size_t i = 0;
  const size_t limit = n - kMinMatch;

  auto insert = [&](size_t pos) {
    uint32_t h = Hash4(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<uint32_t>(pos + 1);
  };

  auto find_match = [&](size_t pos, size_t* match_pos) -> size_t {
    uint32_t h = Hash4(data + pos);
    uint32_t cand = head[h];
    size_t best_len = 0;
    int probes = kMaxChainProbes;
    while (cand != 0 && probes-- > 0) {
      size_t c = cand - 1;
      if (pos - c > kMaxDistance) break;
      size_t len = MatchLength(data + c, data + pos, end);
      if (len > best_len) {
        best_len = len;
        *match_pos = c;
      }
      cand = prev[c];
    }
    return best_len;
  };

  while (i <= limit) {
    size_t match_pos = 0;
    size_t len = find_match(i, &match_pos);
    if (len >= kMinMatch) {
      // Lazy evaluation: if the next position has a strictly longer match,
      // emit this byte as a literal and take the later match instead.
      if (i + 1 <= limit) {
        size_t next_pos = 0;
        insert(i);
        size_t next_len = find_match(i + 1, &next_pos);
        if (next_len > len + 1) {
          ++i;
          continue;  // i-1..i stay pending as literals
        }
        EmitLiterals(data, literal_start, i, output);
        PutVarint64(output, (len << 1) | 1);
        PutVarint64(output, i - match_pos);
        // Index positions inside the match (sparsely for long matches).
        size_t match_end = i + len;
        size_t step = len > 64 ? 8 : 1;
        for (size_t p = i + 1; p + kMinMatch <= n && p < match_end;
             p += step) {
          insert(p);
        }
        i = match_end;
        literal_start = i;
        continue;
      }
      EmitLiterals(data, literal_start, i, output);
      PutVarint64(output, (len << 1) | 1);
      PutVarint64(output, i - match_pos);
      i += len;
      literal_start = i;
      continue;
    }
    insert(i);
    ++i;
  }
  EmitLiterals(data, literal_start, n, output);
}

Status Decompress(Slice input, std::string* output) {
  output->clear();
  uint64_t expected;
  RSTORE_RETURN_IF_ERROR(GetVarint64(&input, &expected));
  // The header size is untrusted; cap it (a frame legitimately larger than
  // this would be split upstream — chunks are ~1 MB) and reserve
  // conservatively so a lying header cannot trigger a huge allocation or an
  // unbounded RLE expansion loop.
  constexpr uint64_t kMaxFrameBytes = 1ull << 28;
  if (expected > kMaxFrameBytes) {
    return Status::Corruption("lz: implausible frame size");
  }
  output->reserve(std::min<uint64_t>(expected, 1u << 20));
  while (!input.empty()) {
    uint64_t token;
    RSTORE_RETURN_IF_ERROR(GetVarint64(&input, &token));
    uint64_t len = token >> 1;
    if ((token & 1) == 0) {
      if (input.size() < len) return Status::Corruption("lz: truncated literals");
      output->append(input.data(), len);
      input.RemovePrefix(len);
    } else {
      uint64_t distance;
      RSTORE_RETURN_IF_ERROR(GetVarint64(&input, &distance));
      if (distance == 0 || distance > output->size()) {
        return Status::Corruption("lz: match distance out of range");
      }
      if (output->size() + len > expected) {
        return Status::Corruption("lz: output overrun");
      }
      // Byte-at-a-time copy: overlapping matches (distance < len) are the
      // RLE case and must replicate already-written bytes.
      size_t src = output->size() - distance;
      for (uint64_t k = 0; k < len; ++k) {
        output->push_back((*output)[src + k]);
      }
    }
  }
  if (output->size() != expected) {
    return Status::Corruption("lz: size mismatch after decompress");
  }
  return Status::OK();
}

Result<uint64_t> PeekUncompressedSize(Slice input) {
  uint64_t size;
  Status s = GetVarint64(&input, &size);
  if (!s.ok()) return s;
  return size;
}

}  // namespace lz
}  // namespace rstore
