#ifndef RSTORE_COMPRESS_COMPRESSOR_H_
#define RSTORE_COMPRESS_COMPRESSOR_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace rstore {

/// Block compression codecs selectable per-store (Options::compression).
enum class CompressionType : uint8_t {
  kNone = 0,
  kLZ = 1,
};

/// Stateless block compressor interface. Implementations must be
/// thread-safe (no mutable state).
class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual CompressionType type() const = 0;

  /// Compresses `input` into `*output` (cleared first).
  virtual void Compress(Slice input, std::string* output) const = 0;

  /// Inverse of Compress; kCorruption on malformed input.
  virtual Status Decompress(Slice input, std::string* output) const = 0;
};

/// Returns the process-wide instance for `type` (not owned; never null).
const Compressor* GetCompressor(CompressionType type);

}  // namespace rstore

#endif  // RSTORE_COMPRESS_COMPRESSOR_H_
