#ifndef RSTORE_COMPRESS_DELTA_CODEC_H_
#define RSTORE_COMPRESS_DELTA_CODEC_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace rstore {

/// Byte-level delta encoding between two record payloads.
///
/// Inside a sub-chunk, sibling record versions are "delta-ed against their
/// common parent" (paper §3.4): instead of storing each version in full we
/// store COPY(base_offset, len) / ADD(bytes) instructions that rebuild the
/// target from the base. Two versions of a large JSON document that differ
/// in one attribute then cost O(change), which is what makes sub-chunk
/// compression ratios track the update percentage Pd (paper Fig. 10).
///
/// Encoding: [varint target_size] then ops:
///   COPY: varint (len << 1 | 1), varint base_offset
///   ADD:  varint (len << 1 | 0), len raw bytes
///
/// The encoder indexes the base with 8-byte anchors and extends matches both
/// forward and backward, a simplified bsdiff/xdelta scheme.
namespace delta_codec {

/// Produces a delta such that Apply(base, delta) == target. Appends to
/// `*delta` (cleared first). Worst case (nothing shared) the delta is the
/// target plus a few bytes of framing.
void Encode(Slice base, Slice target, std::string* delta);

/// Reconstructs the target from the base and a delta produced by Encode.
Status Apply(Slice base, Slice delta, std::string* target);

}  // namespace delta_codec
}  // namespace rstore

#endif  // RSTORE_COMPRESS_DELTA_CODEC_H_
