#include "compress/bitmap.h"

#include <bit>

#include "common/coding.h"
#include "common/logging.h"

namespace rstore {

void Bitmap::Set(size_t i) {
  RSTORE_DCHECK(i < size_);
  words_[i >> 6] |= (1ull << (i & 63));
}

void Bitmap::Clear(size_t i) {
  RSTORE_DCHECK(i < size_);
  words_[i >> 6] &= ~(1ull << (i & 63));
}

bool Bitmap::Test(size_t i) const {
  RSTORE_DCHECK(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

size_t Bitmap::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

std::vector<uint32_t> Bitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w) {
      int bit = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

void Bitmap::UnionWith(const Bitmap& other) {
  RSTORE_CHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::IntersectWith(const Bitmap& other) {
  RSTORE_CHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::SerializeTo(std::string* out) const {
  PutVarint64(out, size_);
  // Token stream: (count << 2 | kind). kind 0 = run of zero words,
  // kind 1 = run of all-one words, kind 2 = literal words (count follows
  // inline as fixed64 each).
  size_t i = 0;
  while (i < words_.size()) {
    uint64_t w = words_[i];
    if (w == 0 || w == ~0ull) {
      size_t j = i;
      while (j < words_.size() && words_[j] == w) ++j;
      uint64_t kind = (w == 0) ? 0 : 1;
      PutVarint64(out, ((j - i) << 2) | kind);
      i = j;
    } else {
      size_t j = i;
      while (j < words_.size() && words_[j] != 0 && words_[j] != ~0ull) ++j;
      PutVarint64(out, ((j - i) << 2) | 2);
      for (size_t k = i; k < j; ++k) PutFixed64(out, words_[k]);
      i = j;
    }
  }
}

Status Bitmap::DeserializeFrom(Slice* input, Bitmap* out) {
  uint64_t size;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &size));
  // The size is untrusted: cap the allocation far above any legitimate
  // bitmap (chunk maps cover at most a chunk's records) but far below
  // memory exhaustion.
  constexpr uint64_t kMaxBits = 1ull << 26;  // 64M bits / 8 MB of words
  if (size > kMaxBits) {
    return Status::Corruption("bitmap size implausibly large");
  }
  Bitmap result(size);
  size_t word_count = (size + 63) / 64;
  size_t filled = 0;
  while (filled < word_count) {
    uint64_t token;
    RSTORE_RETURN_IF_ERROR(GetVarint64(input, &token));
    uint64_t count = token >> 2;
    uint64_t kind = token & 3;
    if (filled + count > word_count) {
      return Status::Corruption("bitmap: word overrun");
    }
    switch (kind) {
      case 0:
        filled += count;
        break;
      case 1:
        for (uint64_t k = 0; k < count; ++k) result.words_[filled++] = ~0ull;
        break;
      case 2:
        for (uint64_t k = 0; k < count; ++k) {
          uint64_t w;
          RSTORE_RETURN_IF_ERROR(GetFixed64(input, &w));
          result.words_[filled++] = w;
        }
        break;
      default:
        return Status::Corruption("bitmap: bad token kind");
    }
  }
  // Trailing bits beyond `size` in the last word must be zero for the
  // equality operator to be meaningful.
  if (size % 64 != 0 && !result.words_.empty()) {
    result.words_.back() &= (1ull << (size % 64)) - 1;
  }
  *out = std::move(result);
  return Status::OK();
}

}  // namespace rstore
