#ifndef RSTORE_COMPRESS_BITMAP_H_
#define RSTORE_COMPRESS_BITMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace rstore {

/// A bitmap over positions [0, size) with a compressed wire format.
///
/// Chunk maps store, per version, which of the chunk's records belong to it
/// (paper §3.1: "the adjacency list in each chunk map file is then converted
/// to a bitmap, compressed and stored in the KVS"). In-memory this is a plain
/// word array for O(1) Set/Test; Serialize emits a WAH-style run-length
/// encoding — a varint stream alternating [run of identical words][literal
/// word count + words] — which collapses the long all-zero / all-one spans
/// typical of version membership.
class Bitmap {
 public:
  Bitmap() : size_(0) {}
  explicit Bitmap(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToVector() const;

  /// In-place union/intersection; both bitmaps must have equal size.
  void UnionWith(const Bitmap& other);
  void IntersectWith(const Bitmap& other);

  void SerializeTo(std::string* out) const;
  static Status DeserializeFrom(Slice* input, Bitmap* out);

  bool operator==(const Bitmap& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace rstore

#endif  // RSTORE_COMPRESS_BITMAP_H_
