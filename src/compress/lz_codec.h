#ifndef RSTORE_COMPRESS_LZ_CODEC_H_
#define RSTORE_COMPRESS_LZ_CODEC_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace rstore {

/// A self-contained LZ77-style byte compressor.
///
/// RStore stores sub-chunks "in a compressed fashion" (paper §2.4); the paper
/// uses an off-the-shelf tool, this repo implements the equivalent from
/// scratch so the whole substrate is buildable offline. The format is a
/// varint-framed token stream:
///
///   [varint uncompressed_size] then tokens until exhausted:
///     literal run: varint (len << 1 | 0), followed by len raw bytes
///     match:       varint (len << 1 | 1), varint distance  (len >= 4)
///
/// Match finding uses a 4-byte hash table with chained probing, greedy with
/// one-byte lazy evaluation — roughly LZ4-class ratios on JSON text, which is
/// what the compression-ratio experiments (paper Fig. 10) need.
namespace lz {

/// Compresses `input`, appending to `*output` (which is cleared first).
/// Never fails; incompressible data degrades to one literal run with ~1.01x
/// expansion plus the header.
void Compress(Slice input, std::string* output);

/// Decompresses a buffer produced by Compress. Returns kCorruption on any
/// malformed framing (bad varint, out-of-range match, size mismatch).
Status Decompress(Slice input, std::string* output);

/// Uncompressed size recorded in the frame header (cheap peek).
Result<uint64_t> PeekUncompressedSize(Slice input);

}  // namespace lz
}  // namespace rstore

#endif  // RSTORE_COMPRESS_LZ_CODEC_H_
