#ifndef RSTORE_JSON_JSON_VALUE_H_
#define RSTORE_JSON_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rstore {
namespace json {

/// A JSON document node: null, bool, number (stored as double, with an
/// integer fast path), string, array, or object. Records in RStore are JSON
/// documents (paper §5.1: "each record is created as a JSON document"), and
/// the dataset generator mutates these values to produce bounded-difference
/// record versions.
///
/// Objects preserve key order lexicographically (std::map) so that two
/// semantically equal documents serialize identically — a property the
/// delta codec and the dedup fingerprints rely on.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}            // NOLINT
  Value(bool b) : data_(b) {}                          // NOLINT
  Value(int64_t i) : data_(i) {}                       // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}     // NOLINT
  Value(double d) : data_(d) {}                        // NOLINT
  Value(std::string s) : data_(std::move(s)) {}        // NOLINT
  Value(const char* s) : data_(std::string(s)) {}      // NOLINT
  Value(Array a) : data_(std::move(a)) {}              // NOLINT
  Value(Object o) : data_(std::move(o)) {}             // NOLINT

  static Value MakeArray() { return Value(Array{}); }
  static Value MakeObject() { return Value(Object{}); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; pre-condition: the value holds that type.
  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  /// Numeric value as double regardless of int/double representation.
  double as_double() const;
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object field access; inserts a null member if absent (object only).
  Value& operator[](const std::string& key);
  /// Returns nullptr if `key` is absent or this is not an object.
  const Value* Find(const std::string& key) const;

  size_t size() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

}  // namespace json
}  // namespace rstore

#endif  // RSTORE_JSON_JSON_VALUE_H_
