#include "json/json_writer.h"

#include <cmath>
#include <cstdio>

namespace rstore {
namespace json {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, const Value& v) {
  if (v.is_int()) {
    out->append(std::to_string(v.as_int()));
    return;
  }
  double d = v.as_double();
  if (!std::isfinite(d)) {
    out->append("null");  // JSON has no Inf/NaN.
    return;
  }
  char buf[32];
  // %.17g round-trips any double; trim to shortest via %g first.
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

void Write(std::string* out, const Value& v, int indent, int depth) {
  auto newline = [&] {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * (depth + 1)), ' ');
    }
  };
  auto closing_newline = [&] {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (v.type()) {
    case Value::Type::kNull:
      out->append("null");
      break;
    case Value::Type::kBool:
      out->append(v.as_bool() ? "true" : "false");
      break;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      AppendNumber(out, v);
      break;
    case Value::Type::kString:
      AppendEscaped(out, v.as_string());
      break;
    case Value::Type::kArray: {
      const auto& items = v.as_array();
      if (items.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items.size(); ++i) {
        if (i) out->push_back(',');
        newline();
        Write(out, items[i], indent, depth + 1);
      }
      closing_newline();
      out->push_back(']');
      break;
    }
    case Value::Type::kObject: {
      const auto& members = v.as_object();
      if (members.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : members) {
        if (!first) out->push_back(',');
        first = false;
        newline();
        AppendEscaped(out, key);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        Write(out, member, indent, depth + 1);
      }
      closing_newline();
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string WriteCompact(const Value& value) {
  std::string out;
  Write(&out, value, -1, 0);
  return out;
}

std::string WritePretty(const Value& value) {
  std::string out;
  Write(&out, value, 2, 0);
  return out;
}

}  // namespace json
}  // namespace rstore
