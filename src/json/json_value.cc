#include "json/json_value.h"

namespace rstore {
namespace json {

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kInt;
    case 3:
      return Type::kDouble;
    case 4:
      return Type::kString;
    case 5:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
  return std::get<double>(data_);
}

Value& Value::operator[](const std::string& key) {
  return std::get<Object>(data_)[key];
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(data_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

size_t Value::size() const {
  if (is_array()) return std::get<Array>(data_).size();
  if (is_object()) return std::get<Object>(data_).size();
  return 0;
}

}  // namespace json
}  // namespace rstore
