#ifndef RSTORE_JSON_JSON_PARSER_H_
#define RSTORE_JSON_JSON_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "json/json_value.h"

namespace rstore {
namespace json {

/// Parses a complete JSON text into a Value. Strict: trailing garbage after
/// the top-level value, unterminated strings, bad escapes, and malformed
/// numbers all yield kCorruption. Supports the full JSON grammar including
/// \uXXXX escapes (encoded to UTF-8; surrogate pairs handled).
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace rstore

#endif  // RSTORE_JSON_JSON_PARSER_H_
