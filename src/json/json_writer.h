#ifndef RSTORE_JSON_JSON_WRITER_H_
#define RSTORE_JSON_JSON_WRITER_H_

#include <string>

#include "json/json_value.h"

namespace rstore {
namespace json {

/// Serializes a Value to compact JSON (no insignificant whitespace). Object
/// members are emitted in map order, so equal Values produce byte-identical
/// output — a property record fingerprinting depends on.
std::string WriteCompact(const Value& value);

/// Serializes with 2-space indentation for human consumption.
std::string WritePretty(const Value& value);

}  // namespace json
}  // namespace rstore

#endif  // RSTORE_JSON_JSON_WRITER_H_
