#include "json/json_parser.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace rstore {
namespace json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text), pos_(0) {}

  // GCC 12's -Wmaybe-uninitialized false-positives on moving the
  // variant-backed Value into Result's std::optional at -O2 (the analysis
  // loses track of the variant's engaged member; see GCC PR 105593 family).
  // Scoped suppression: the Value is fully initialized on every return path.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  Result<Value> ParseDocument() {
    SkipWhitespace();
    Value v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }
#pragma GCC diagnostic pop

 private:
  static constexpr int kMaxDepth = 256;

  Status Fail(const std::string& why) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + why);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Take() { return text_[pos_++]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (AtEnd()) return Fail("unexpected end of input");
    char c = Peek();
    switch (c) {
      case 'n':
        if (!Consume("null")) return Fail("invalid literal");
        *out = Value(nullptr);
        return Status::OK();
      case 't':
        if (!Consume("true")) return Fail("invalid literal");
        *out = Value(true);
        return Status::OK();
      case 'f':
        if (!Consume("false")) return Fail("invalid literal");
        *out = Value(false);
        return Status::OK();
      case '"': {
        std::string s;
        RSTORE_RETURN_IF_ERROR(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseArray(Value* out, int depth) {
    Take();  // '['
    Value::Array items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Take();
      *out = Value(std::move(items));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      Value item;
      RSTORE_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      char c = Take();
      if (c == ']') break;
      if (c != ',') return Fail("expected ',' or ']' in array");
    }
    *out = Value(std::move(items));
    return Status::OK();
  }

  Status ParseObject(Value* out, int depth) {
    Take();  // '{'
    Value::Object members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Take();
      *out = Value(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      RSTORE_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (AtEnd() || Take() != ':') return Fail("expected ':' after key");
      SkipWhitespace();
      Value member;
      RSTORE_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      members[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      char c = Take();
      if (c == '}') break;
      if (c != ',') return Fail("expected ',' or '}' in object");
    }
    *out = Value(std::move(members));
    return Status::OK();
  }

  Status ParseHex4(uint32_t* cp) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = Take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    *cp = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      s->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Status ParseString(std::string* out) {
    Take();  // '"'
    out->clear();
    for (;;) {
      if (AtEnd()) return Fail("unterminated string");
      char c = Take();
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (AtEnd()) return Fail("truncated escape");
        char e = Take();
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            uint32_t cp = 0;
            RSTORE_RETURN_IF_ERROR(ParseHex4(&cp));
            if (cp >= 0xd800 && cp <= 0xdbff) {
              // High surrogate: must be followed by \uDCxx low surrogate.
              if (pos_ + 1 >= text_.size() || Take() != '\\' || Take() != 'u') {
                return Fail("unpaired surrogate");
              }
              uint32_t low = 0;
              RSTORE_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xdc00 || low > 0xdfff) {
                return Fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
              return Fail("unpaired low surrogate");
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      } else {
        out->push_back(c);
      }
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    bool is_double = false;
    if (!AtEnd() && Peek() == '-') Take();
    if (AtEnd() || !isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      Take();
      // JSON forbids leading zeros: "01" is invalid.
      if (!AtEnd() && isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("leading zero in number");
      }
    } else {
      while (!AtEnd() && isdigit(static_cast<unsigned char>(Peek()))) Take();
    }
    if (!AtEnd() && Peek() == '.') {
      is_double = true;
      Take();
      if (AtEnd() || !isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit expected after decimal point");
      }
      while (!AtEnd() && isdigit(static_cast<unsigned char>(Peek()))) Take();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      Take();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Take();
      if (AtEnd() || !isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit expected in exponent");
      }
      while (!AtEnd() && isdigit(static_cast<unsigned char>(Peek()))) Take();
    }
    std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = Value(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Integer overflow: fall through to double.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return Fail("unparseable number");
    }
    *out = Value(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace json
}  // namespace rstore
