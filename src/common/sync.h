#ifndef RSTORE_COMMON_SYNC_H_
#define RSTORE_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace rstore {

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These drive Clang's -Wthread-safety static analysis: data members tagged
// RSTORE_GUARDED_BY(mu) may only be touched while `mu` is held, functions
// tagged RSTORE_REQUIRES(mu) may only be called with `mu` held, and the
// acquire/release tags on the primitives below let the compiler track which
// locks are held on every path. Violations are compile errors under
// `-Wthread-safety -Werror=thread-safety` (RSTORE_THREAD_SAFETY=ON, the
// default when building with Clang). See DESIGN.md "Locking discipline".
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define RSTORE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RSTORE_THREAD_ANNOTATION__(x)
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define RSTORE_CAPABILITY(x) RSTORE_THREAD_ANNOTATION__(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define RSTORE_SCOPED_CAPABILITY RSTORE_THREAD_ANNOTATION__(scoped_lockable)
/// Data member may only be accessed while the given capability is held.
#define RSTORE_GUARDED_BY(x) RSTORE_THREAD_ANNOTATION__(guarded_by(x))
/// Pointee (not the pointer) is protected by the given capability.
#define RSTORE_PT_GUARDED_BY(x) RSTORE_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function acquires the capability (exclusive / shared).
#define RSTORE_ACQUIRE(...) \
  RSTORE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RSTORE_ACQUIRE_SHARED(...) \
  RSTORE_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (exclusive / shared / either).
#define RSTORE_RELEASE(...) \
  RSTORE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RSTORE_RELEASE_SHARED(...) \
  RSTORE_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RSTORE_RELEASE_GENERIC(...) \
  RSTORE_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define RSTORE_TRY_ACQUIRE(...) \
  RSTORE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability (exclusive / shared) to call this.
#define RSTORE_REQUIRES(...) \
  RSTORE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define RSTORE_REQUIRES_SHARED(...) \
  RSTORE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (the function acquires it itself).
#define RSTORE_EXCLUDES(...) \
  RSTORE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. callbacks invoked under a lock).
#define RSTORE_ASSERT_CAPABILITY(x) \
  RSTORE_THREAD_ANNOTATION__(assert_capability(x))
/// Function returns a reference to the given capability.
#define RSTORE_RETURN_CAPABILITY(x) \
  RSTORE_THREAD_ANNOTATION__(lock_returned(x))
/// Opts a function out of the analysis (adapters around unannotated code).
#define RSTORE_NO_THREAD_SAFETY_ANALYSIS \
  RSTORE_THREAD_ANNOTATION__(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Lock-rank table.
//
// Every Mutex/SharedMutex is constructed with a rank. In debug builds a
// thread-local held-lock stack RSTORE_DCHECKs that ranks are acquired in
// strictly decreasing order, so any two code paths that could deadlock by
// taking the same pair of locks in opposite orders fail immediately — with
// the full held stack in the message — even in a single-threaded test.
// Equal ranks never nest, which also catches re-entrant self-deadlock on a
// non-recursive mutex.
//
// Higher rank = outer lock (acquired first). Keep this table the single
// source of truth for lock ordering; add new ranks with a gap so layers can
// be inserted later.
// ---------------------------------------------------------------------------

enum LockRank : int {
  /// Cluster hinted-handoff queues. Above the stats lock: hint staging /
  /// replay may update stats afterwards, but never the reverse. Never held
  /// across node calls — replay swaps the queue out under the lock, then
  /// writes to nodes with it released.
  kLockRankClusterHints = 410,
  /// Cluster coordinator state (stats); never held across node calls.
  kLockRankCluster = 400,
  /// FileStore table/log state.
  kLockRankFileStore = 300,
  /// MemoryStore table state (innermost storage-engine lock; also the
  /// per-node lock inside a Cluster).
  kLockRankMemoryStore = 200,
  /// ChunkCache shard locks. Below the storage ranks: cache operations never
  /// call into a backend, but a thread may insert into the cache right after
  /// a fetch, and decode workers touch shards under ParallelFor.
  kLockRankChunkCache = 150,
  /// Ingest pipeline hand-off queue (src/core/ingest_pipeline.h): encoder
  /// threads park finished shards and the writer claims them in shard order.
  /// Below the storage ranks because the writer releases it before touching
  /// the backend (writes never run under a pipeline lock), and above
  /// ParallelError so a throwing encoder can still report through
  /// ParallelFor's capture path.
  kLockRankIngestPipeline = 120,
  /// ParallelFor first-error capture; taken by a worker after its user fn
  /// has thrown (and therefore released whatever it held).
  kLockRankParallelError = 100,
  /// MetricsRegistry name->metric map. Below every subsystem rank: metric
  /// registration may happen on first touch from anywhere (including under a
  /// cache shard lock), and the registry never calls out while holding it.
  /// Updates to registered metrics are lock-free and never take this mutex.
  kLockRankMetrics = 50,
  /// FlightRecorder ring buffers (src/common/flight_recorder.h). Below the
  /// metrics rank: query completion paths may record a flight entry while
  /// holding subsystem locks, and the recorder never calls out (it only
  /// copies POD records) while holding it.
  kLockRankFlightRecorder = 45,
  /// Executor run queue (src/common/executor.h). Below every subsystem rank
  /// so any code path may Post/Cancel work while holding its own locks; the
  /// executor acquires nothing and invokes no user code while holding it —
  /// tasks always run with the queue lock released.
  kLockRankExecutor = 40,
  /// Future/Promise shared state (src/common/executor.h). Continuations and
  /// blocked getters observe the value only after `ready` flips under this
  /// lock; completion releases it before invoking any continuation, so no
  /// user code ever runs under a future lock.
  kLockRankFuture = 30,
  /// Locks that never nest with anything (two leaf locks cannot nest).
  kLockRankLeaf = 0,
};

namespace sync_internal {

// Debug-only held-lock registry (compiled out under NDEBUG). `mu` is only
// used as an identity token; the registry never dereferences it.
#ifndef NDEBUG
void CheckRankBeforeAcquire(const void* mu, int rank, const char* name);
void RecordAcquired(const void* mu, int rank, const char* name);
void RecordReleased(const void* mu, const char* name);
/// Number of locks the calling thread currently holds (for tests).
int HeldLockCount();
#else
inline void CheckRankBeforeAcquire(const void*, int, const char*) {}
inline void RecordAcquired(const void*, int, const char*) {}
inline void RecordReleased(const void*, const char*) {}
inline int HeldLockCount() { return 0; }
#endif

}  // namespace sync_internal

/// Annotated exclusive mutex. Construct with a rank from the table above and
/// a name for diagnostics; prefer the RAII MutexLock over manual
/// Lock/Unlock.
class RSTORE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(int rank = kLockRankLeaf, const char* name = "mutex")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RSTORE_ACQUIRE() {
    sync_internal::CheckRankBeforeAcquire(this, rank_, name_);
    mu_.lock();
    sync_internal::RecordAcquired(this, rank_, name_);
  }

  bool TryLock() RSTORE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::RecordAcquired(this, rank_, name_);
    return true;
  }

  void Unlock() RSTORE_RELEASE() {
    sync_internal::RecordReleased(this, name_);
    mu_.unlock();
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

/// Annotated reader/writer mutex. Shared acquisitions obey the same rank
/// discipline as exclusive ones.
class RSTORE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(int rank = kLockRankLeaf,
                       const char* name = "shared_mutex")
      : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RSTORE_ACQUIRE() {
    sync_internal::CheckRankBeforeAcquire(this, rank_, name_);
    mu_.lock();
    sync_internal::RecordAcquired(this, rank_, name_);
  }

  void Unlock() RSTORE_RELEASE() {
    sync_internal::RecordReleased(this, name_);
    mu_.unlock();
  }

  void LockShared() RSTORE_ACQUIRE_SHARED() {
    sync_internal::CheckRankBeforeAcquire(this, rank_, name_);
    mu_.lock_shared();
    sync_internal::RecordAcquired(this, rank_, name_);
  }

  void UnlockShared() RSTORE_RELEASE_SHARED() {
    sync_internal::RecordReleased(this, name_);
    mu_.unlock_shared();
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
  const char* const name_;
};

/// RAII exclusive lock over a Mutex.
class RSTORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RSTORE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RSTORE_RELEASE_GENERIC() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class RSTORE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) RSTORE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  // Generic release: the scope was acquired shared, and plain (exclusive)
  // release on a scoped capability's destructor trips the shared/exclusive
  // mismatch warning.
  ~ReaderLock() RSTORE_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class RSTORE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) RSTORE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() RSTORE_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with rstore::Mutex. Wait atomically releases
/// the mutex (updating the rank registry) and re-acquires it before
/// returning, so held-lock bookkeeping stays exact across the wait.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) RSTORE_REQUIRES(mu);

  /// Waits until pred() holds; re-checks on every wakeup.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) RSTORE_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable_any cv_;
};

}  // namespace rstore

#endif  // RSTORE_COMMON_SYNC_H_
