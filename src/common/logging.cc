#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rstore {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line
          << "] Check failed: " << condition << " ";
}

CheckFailure::~CheckFailure() {
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
}

}  // namespace internal

}  // namespace rstore
