#ifndef RSTORE_COMMON_HASH_H_
#define RSTORE_COMMON_HASH_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"

namespace rstore {

/// 64-bit FNV-1a over a byte range. Used for record fingerprints and
/// consistent-hash ring placement.
uint64_t Fnv1a64(Slice data);

/// Strong 64->64-bit mixer (splitmix64 finalizer). Good avalanche; used to
/// derive independent hash streams from a single value.
uint64_t Mix64(uint64_t x);

/// A family of l pairwise-independent hash functions h_i(x) = (a_i*x + b_i)
/// mod p over a 61-bit Mersenne prime, as required by the min-hashing step of
/// the shingle partitioner (paper §3.1, Algorithm 1). Deterministic given
/// `seed` so partitioning runs are reproducible.
class HashFamily {
 public:
  HashFamily(size_t count, uint64_t seed);

  size_t size() const { return params_.size(); }

  /// Applies the i-th function to `x`.
  uint64_t Apply(size_t i, uint64_t x) const;

 private:
  struct Params {
    uint64_t a;
    uint64_t b;
  };
  std::vector<Params> params_;
};

}  // namespace rstore

#endif  // RSTORE_COMMON_HASH_H_
