#ifndef RSTORE_COMMON_PARALLEL_H_
#define RSTORE_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace rstore {

/// Runs fn(i) for i in [0, count) across up to `max_threads` worker threads.
/// max_threads = 0 means hardware concurrency; an explicit max_threads is
/// honored even beyond the core count (deliberate oversubscription), though
/// never more threads than items. Falls back to inline execution for a
/// single item or thread. fn must be safe to call concurrently for distinct
/// i; writers should target disjoint, pre-sized slots.
///
/// Exception safety: if a worker's fn throws, the first exception is
/// captured, the remaining iterations are abandoned (workers drain without
/// calling fn again), all threads are joined, and the exception is rethrown
/// on the calling thread. Without this, a throwing worker would hit
/// std::terminate.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                        unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  unsigned threads = max_threads == 0 ? hardware : max_threads;
  threads = static_cast<unsigned>(
      std::min<size_t>(threads, count));
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;  // write-once, guarded by error_mu
  Mutex error_mu{kLockRankParallelError, "ParallelFor::error_mu"};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          MutexLock lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rstore

#endif  // RSTORE_COMMON_PARALLEL_H_
