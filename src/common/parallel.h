#ifndef RSTORE_COMMON_PARALLEL_H_
#define RSTORE_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace rstore {

/// Runs fn(i) for i in [0, count) across up to `max_threads` worker threads
/// (0 = hardware concurrency). Falls back to inline execution for a single
/// item or thread. fn must be safe to call concurrently for distinct i;
/// writers should target disjoint, pre-sized slots.
inline void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                        unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  unsigned threads = max_threads == 0 ? hardware
                                      : std::min(max_threads, hardware);
  threads = static_cast<unsigned>(
      std::min<size_t>(threads, count));
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace rstore

#endif  // RSTORE_COMMON_PARALLEL_H_
