#ifndef RSTORE_COMMON_STRING_UTIL_H_
#define RSTORE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rstore {

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.5 KB", "3.2 MB", ... human-readable byte counts for reports.
std::string HumanBytes(uint64_t bytes);

/// "12.3 ms" / "4.56 s" human-readable durations from seconds.
std::string HumanDuration(double seconds);

/// Splits on a single character; empty tokens are preserved.
std::vector<std::string> SplitString(const std::string& s, char sep);

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

}  // namespace rstore

#endif  // RSTORE_COMMON_STRING_UTIL_H_
