#ifndef RSTORE_COMMON_CODING_H_
#define RSTORE_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace rstore {

/// Low-level binary encoding primitives shared by every serialized structure
/// in RStore (chunks, chunk maps, indexes, deltas). Fixed-width integers are
/// little-endian; variable-width integers use LEB128 varints; signed values
/// use zigzag so small negatives stay small.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Zigzag-encoded signed varint.
void PutVarsint64(std::string* dst, int64_t value);
/// Varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Each Get* consumes bytes from the front of `input` on success. On failure
/// (truncated/corrupt input) `input` is left unspecified and a kCorruption
/// status is returned.
Status GetFixed32(Slice* input, uint32_t* value);
Status GetFixed64(Slice* input, uint64_t* value);
Status GetVarint32(Slice* input, uint32_t* value);
Status GetVarint64(Slice* input, uint64_t* value);
Status GetVarsint64(Slice* input, int64_t* value);
Status GetLengthPrefixed(Slice* input, Slice* value);

/// Number of bytes PutVarint64 would emit for `value`.
size_t VarintLength(uint64_t value);

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace rstore

#endif  // RSTORE_COMMON_CODING_H_
