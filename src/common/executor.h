#ifndef RSTORE_COMMON_EXECUTOR_H_
#define RSTORE_COMMON_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sync.h"

namespace rstore {

/// Deterministic discrete-event executor: the spine of the async read path.
///
/// Tasks are scheduled at *virtual* (simulated) microsecond timestamps and
/// run in a deterministic total order — (due time, seed-perturbed tie key,
/// submission sequence) — by whichever thread calls RunUntilIdle(). The
/// virtual clock never reads wall time: it jumps to each task's due time as
/// the task is dequeued, exactly like the latency model charges simulated
/// micros with zero wall-clock sleep. Two runs with the same seed and the
/// same submission order replay the same interleaving event for event,
/// which is what lets chaos tests assert timeline equality across runs.
///
/// The seed only perturbs the order of tasks due at the *same* virtual
/// instant (seed 0 = strict FIFO among ties); it never reorders across
/// distinct timestamps. This is the "seeded scheduler": a cheap way to
/// explore different-but-reproducible interleavings of logically
/// concurrent events.
///
/// Thread safety: Post/PostAt/PostAfter/Cancel may be called from any
/// thread (the TSan stress suite hammers this); RunUntilIdle must only run
/// on one thread at a time and must not be re-entered from a task. Tasks
/// are always invoked with the queue lock released, so they may freely
/// post, cancel, and complete futures.
class Executor {
 public:
  using Task = std::function<void()>;
  using TaskId = uint64_t;

  explicit Executor(uint64_t seed = 0) : seed_(seed) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Schedules `task` at the current virtual time (after already-queued
  /// tasks due now). Returns an id usable with Cancel.
  TaskId Post(Task task);

  /// Schedules `task` at absolute virtual time `when_us`, clamped to the
  /// current virtual time (the past is not schedulable).
  TaskId PostAt(uint64_t when_us, Task task);

  /// Schedules `task` `delay_us` after the current virtual time.
  TaskId PostAfter(uint64_t delay_us, Task task);

  /// Removes a not-yet-run task. Returns false if it already ran, was
  /// already cancelled, or never existed.
  bool Cancel(TaskId id);

  /// Runs queued tasks in deterministic order until the queue drains,
  /// advancing the virtual clock to each task's due time. Returns the
  /// number of tasks executed (cancelled tasks do not count).
  size_t RunUntilIdle();

  /// Current virtual time in microseconds.
  uint64_t now_us() const;

  /// Number of tasks currently queued.
  size_t pending() const;

  uint64_t seed() const { return seed_; }

 private:
  /// Deterministic execution order among queued tasks.
  struct Key {
    uint64_t when_us;
    uint64_t tie;
    uint64_t seq;
    bool operator<(const Key& o) const {
      if (when_us != o.when_us) return when_us < o.when_us;
      if (tie != o.tie) return tie < o.tie;
      return seq < o.seq;
    }
  };

  TaskId Enqueue(uint64_t when_us, Task task);

  const uint64_t seed_;
  mutable Mutex mu_{kLockRankExecutor, "executor"};
  std::map<Key, std::pair<TaskId, Task>> queue_ RSTORE_GUARDED_BY(mu_);
  std::unordered_map<TaskId, Key> index_ RSTORE_GUARDED_BY(mu_);
  uint64_t now_us_ RSTORE_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ RSTORE_GUARDED_BY(mu_) = 0;
  TaskId next_id_ RSTORE_GUARDED_BY(mu_) = 1;
  bool running_ RSTORE_GUARDED_BY(mu_) = false;
};

namespace future_internal {

/// Shared completion state behind a Future/Promise pair.
///
/// Publish protocol: the producer writes `value` and then flips `ready`
/// under `mu`; consumers read `value` only after observing `ready` under
/// `mu` (or from a continuation, which by construction runs after the
/// flip on the completing thread). The mutex therefore orders every write
/// of `value` before every read without being held across the reads
/// themselves — continuations run with no locks held so they can post
/// work, take subsystem locks, and complete other futures.
template <typename T>
struct SharedState {
  Mutex mu{kLockRankFuture, "future"};
  CondVar cv;
  bool ready RSTORE_GUARDED_BY(mu) = false;
  std::vector<std::function<void(const T&)>> callbacks RSTORE_GUARDED_BY(mu);
  // Written once before `ready` flips under mu, read only afterwards (see
  // the publish protocol above). analyze:allow-annotation-completeness
  T value{};
};

}  // namespace future_internal

template <typename T>
class Promise;

/// Single-value future. Copyable handle; all copies observe the same
/// completion. `T` must be default-constructible and copyable.
template <typename T>
class Future {
 public:
  /// An invalid (detached) future; valid() is false.
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    RSTORE_DCHECK(valid());
    MutexLock lock(state_->mu);
    return state_->ready;
  }

  /// Blocks the calling thread until the value is available and returns a
  /// copy. Cross-thread use only: on a single-threaded executor, blocking
  /// on a future that a queued task would complete deadlocks — chain with
  /// OnReady/Then instead.
  T Get() const {
    RSTORE_DCHECK(valid());
    MutexLock lock(state_->mu);
    state_->cv.Wait(state_->mu, [this] { return state_->ready; });
    return ValueLocked();
  }

  /// Runs `fn(value)` when the future completes — inline, immediately, if
  /// it already has. `fn` always runs with no locks held.
  void OnReady(std::function<void(const T&)> fn) const {
    RSTORE_DCHECK(valid());
    {
      MutexLock lock(state_->mu);
      if (!state_->ready) {
        state_->callbacks.push_back(std::move(fn));
        return;
      }
    }
    fn(state_->value);  // ready observed under mu: publish protocol
  }

  /// Monadic map: returns a future completed with `fn(value)` once this
  /// future completes. `fn` must return a plain value, not a Future.
  template <typename F>
  auto Then(F fn) const -> Future<decltype(fn(std::declval<const T&>()))>;

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<future_internal::SharedState<T>> state)
      : state_(std::move(state)) {}

  T ValueLocked() const RSTORE_REQUIRES(state_->mu) { return state_->value; }

  std::shared_ptr<future_internal::SharedState<T>> state_;
};

/// Producer side of a Future. Set() completes the future exactly once and
/// then invokes registered continuations in registration order with no
/// locks held.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<future_internal::SharedState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  void Set(T value) const {
    std::vector<std::function<void(const T&)>> callbacks;
    {
      MutexLock lock(state_->mu);
      RSTORE_CHECK(!state_->ready) << "Promise::Set called twice";
      state_->value = std::move(value);
      state_->ready = true;
      callbacks.swap(state_->callbacks);
    }
    state_->cv.NotifyAll();
    // `ready` flipped under mu on this thread, so the unlocked read is
    // ordered after the write (publish protocol in SharedState).
    for (auto& cb : callbacks) cb(state_->value);
  }

 private:
  std::shared_ptr<future_internal::SharedState<T>> state_;
};

template <typename T>
template <typename F>
auto Future<T>::Then(F fn) const
    -> Future<decltype(fn(std::declval<const T&>()))> {
  using U = decltype(fn(std::declval<const T&>()));
  Promise<U> next;
  OnReady([next, fn = std::move(fn)](const T& value) { next.Set(fn(value)); });
  return next.future();
}

/// A future already carrying `value`.
template <typename T>
Future<T> MakeReadyFuture(T value) {
  Promise<T> p;
  p.Set(std::move(value));
  return p.future();
}

}  // namespace rstore

#endif  // RSTORE_COMMON_EXECUTOR_H_
