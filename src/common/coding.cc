#include "common/coding.h"

#include <cstring>

namespace rstore {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  size_t n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigzagEncode(value));
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  input->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  *value = v;
  input->RemovePrefix(8);
  return Status::OK();
}

Status GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &v));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte =
        static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("truncated or overlong varint64");
}

Status GetVarsint64(Slice* input, int64_t* value) {
  uint64_t v;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &v));
  *value = ZigzagDecode(v);
  return Status::OK();
}

Status GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed field");
  }
  *value = Slice(input->data(), len);
  input->RemovePrefix(len);
  return Status::OK();
}

size_t VarintLength(uint64_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace rstore
