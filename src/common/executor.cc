#include "common/executor.h"

#include <algorithm>

namespace rstore {
namespace {

// SplitMix64 finalizer: a full-avalanche hash used to derive the
// deterministic tie-break among tasks due at the same virtual instant.
// Pure function of (seed, seq) — no global RNG, no wall clock.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Executor::TaskId Executor::Enqueue(uint64_t when_us, Task task) {
  MutexLock lock(mu_);
  const uint64_t due = std::max(when_us, now_us_);
  const uint64_t seq = next_seq_++;
  const TaskId id = next_id_++;
  const uint64_t tie = seed_ == 0 ? 0 : Mix64(seed_ ^ seq);
  const Key key{due, tie, seq};
  queue_.emplace(key, std::make_pair(id, std::move(task)));
  index_.emplace(id, key);
  return id;
}

Executor::TaskId Executor::Post(Task task) { return Enqueue(0, std::move(task)); }

Executor::TaskId Executor::PostAt(uint64_t when_us, Task task) {
  return Enqueue(when_us, std::move(task));
}

Executor::TaskId Executor::PostAfter(uint64_t delay_us, Task task) {
  MutexLock lock(mu_);
  const uint64_t due = now_us_ + delay_us;
  const uint64_t seq = next_seq_++;
  const TaskId id = next_id_++;
  const uint64_t tie = seed_ == 0 ? 0 : Mix64(seed_ ^ seq);
  const Key key{due, tie, seq};
  queue_.emplace(key, std::make_pair(id, std::move(task)));
  index_.emplace(id, key);
  return id;
}

bool Executor::Cancel(TaskId id) {
  MutexLock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

size_t Executor::RunUntilIdle() {
  size_t executed = 0;
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      if (executed == 0) {
        RSTORE_CHECK(!running_) << "Executor::RunUntilIdle re-entered";
        running_ = true;
      }
      if (queue_.empty()) {
        running_ = false;
        return executed;
      }
      auto it = queue_.begin();
      now_us_ = std::max(now_us_, it->first.when_us);
      task = std::move(it->second.second);
      index_.erase(it->second.first);
      queue_.erase(it);
    }
    // Invoked with mu_ released: tasks may post, cancel, and complete
    // futures (which runs continuations inline) without lock nesting.
    task();
    ++executed;
  }
}

uint64_t Executor::now_us() const {
  MutexLock lock(mu_);
  return now_us_;
}

size_t Executor::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace rstore
