#ifndef RSTORE_COMMON_LOGGING_H_
#define RSTORE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rstore {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log threshold; messages below it are dropped. Default kWarn
/// so library users see problems but benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates the failure message for RSTORE_CHECK and terminates the
/// process on destruction. Never instantiated directly; use the macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Stream-style log sink: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define RSTORE_LOG(level)                                              \
  if (::rstore::LogLevel::level < ::rstore::GetLogLevel()) {           \
  } else                                                               \
    ::rstore::internal::LogMessage(::rstore::LogLevel::level, __FILE__, \
                                   __LINE__)

/// Invariant checks. Policy (see DESIGN.md "Correctness tooling"):
///  - RSTORE_CHECK: internal invariants whose violation means the process
///    state is already corrupt. Always on, logs and aborts. Extra context
///    can be streamed: RSTORE_CHECK(i < n) << "i=" << i;
///  - RSTORE_DCHECK: same contract but for hot paths; compiled out under
///    NDEBUG (the condition is not evaluated).
///  - Errors that depend on input or the environment are not invariants:
///    return a Status instead.
#define RSTORE_CHECK(cond)                                          \
  if (cond) {                                                       \
  } else                                                            \
    ::rstore::internal::CheckFailure(__FILE__, __LINE__, #cond)

#ifndef NDEBUG
#define RSTORE_DCHECK(cond) RSTORE_CHECK(cond)
#else
#define RSTORE_DCHECK(cond)                                         \
  if (true || (cond)) {                                             \
  } else                                                            \
    ::rstore::internal::CheckFailure(__FILE__, __LINE__, #cond)
#endif

}  // namespace rstore

#endif  // RSTORE_COMMON_LOGGING_H_
