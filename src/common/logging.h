#ifndef RSTORE_COMMON_LOGGING_H_
#define RSTORE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rstore {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log threshold; messages below it are dropped. Default kWarn
/// so library users see problems but benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: accumulates a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define RSTORE_LOG(level)                                              \
  if (::rstore::LogLevel::level < ::rstore::GetLogLevel()) {           \
  } else                                                               \
    ::rstore::internal::LogMessage(::rstore::LogLevel::level, __FILE__, \
                                   __LINE__)

}  // namespace rstore

#endif  // RSTORE_COMMON_LOGGING_H_
