#ifndef RSTORE_COMMON_RANDOM_H_
#define RSTORE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rstore {

/// Deterministic xoshiro256** PRNG. All synthetic data generation in RStore
/// flows through this generator so datasets and experiments are reproducible
/// from a seed. Satisfies the UniformRandomBitGenerator concept.
class Random {
 public:
  using result_type = uint64_t;

  explicit Random(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  uint64_t Next();
  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) without replacement.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t count);

 private:
  uint64_t s_[4];
};

/// Zipf(n, theta) sampler over {0, 1, ..., n-1} where rank 0 is the most
/// popular item. Uses the rejection-inversion method of Hörmann, so setup is
/// O(1) and sampling is O(1) regardless of n — important because datasets
/// with skewed updates draw millions of samples (paper §5.1 "skewed (Zipf)"
/// update selection).
class ZipfGenerator {
 public:
  /// `n` >= 1; `theta` > 0 is the skew (paper-style workloads use ~0.99).
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Random* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double u) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace rstore

#endif  // RSTORE_COMMON_RANDOM_H_
