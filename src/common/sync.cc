#include "common/sync.h"

#include <iterator>
#include <string>
#include <vector>

#include "common/logging.h"

namespace rstore {

namespace sync_internal {

#ifndef NDEBUG

namespace {

struct HeldLock {
  const void* mu;
  int rank;
  const char* name;
};

// The calling thread's currently-held locks, outermost first. The rank
// invariant (strictly decreasing) makes the back element the minimum, so an
// acquisition only needs to compare against the top of the stack.
thread_local std::vector<HeldLock> t_held;

std::string DescribeHeld() {
  std::string out;
  for (const HeldLock& h : t_held) {
    if (!out.empty()) out += " -> ";
    out += '"';
    out += h.name;
    out += "\" (rank ";
    out += std::to_string(h.rank);
    out += ')';
  }
  return out.empty() ? "<none>" : out;
}

}  // namespace

void CheckRankBeforeAcquire(const void* mu, int rank, const char* name) {
  if (t_held.empty()) return;
  const HeldLock& top = t_held.back();
  // Checked before blocking on the underlying mutex so a potential deadlock
  // (including re-entrant self-lock: same rank, or the same mutex) is
  // reported instead of hanging.
  RSTORE_DCHECK(rank < top.rank)
      << "lock-rank violation: acquiring \"" << name << "\" (rank " << rank
      << ") while holding \"" << top.name << "\" (rank " << top.rank
      << "); ranks must be strictly decreasing. Held: " << DescribeHeld();
  RSTORE_DCHECK(mu != top.mu)
      << "re-entrant acquisition of \"" << name << "\"";
}

void RecordAcquired(const void* mu, int rank, const char* name) {
  t_held.push_back(HeldLock{mu, rank, name});
}

void RecordReleased(const void* mu, const char* name) {
  // Releases are usually LIFO (RAII guards) but interleaved scopes are
  // legal; search from the innermost end.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  RSTORE_DCHECK(false) << "releasing \"" << name
                       << "\" which this thread does not hold. Held: "
                       << DescribeHeld();
}

int HeldLockCount() { return static_cast<int>(t_held.size()); }

#endif  // !NDEBUG

}  // namespace sync_internal

namespace {

// Adapter giving condition_variable_any the BasicLockable surface it wants
// while routing through Mutex::Lock/Unlock so the rank registry tracks the
// release/re-acquire pair inside a wait. The analysis cannot see through
// cv_.wait, hence the opt-out.
struct CondVarLockAdapter {
  Mutex* mu;
  void lock() RSTORE_NO_THREAD_SAFETY_ANALYSIS { mu->Lock(); }
  void unlock() RSTORE_NO_THREAD_SAFETY_ANALYSIS { mu->Unlock(); }
};

}  // namespace

void CondVar::Wait(Mutex& mu) {
  CondVarLockAdapter adapter{&mu};
  cv_.wait(adapter);
}

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace rstore
