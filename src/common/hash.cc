#include "common/hash.h"

#include "common/logging.h"

namespace rstore {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {
// 2^61 - 1, a Mersenne prime: multiplication mod p fits in __int128.
constexpr uint64_t kMersenne61 = (1ull << 61) - 1;

uint64_t MulMod61(uint64_t a, uint64_t b) {
  unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}
}  // namespace

HashFamily::HashFamily(size_t count, uint64_t seed) {
  params_.reserve(count);
  uint64_t state = seed;
  for (size_t i = 0; i < count; ++i) {
    state = Mix64(state + i + 1);
    uint64_t a = state % (kMersenne61 - 1) + 1;  // a != 0
    state = Mix64(state);
    uint64_t b = state % kMersenne61;
    params_.push_back({a, b});
  }
}

uint64_t HashFamily::Apply(size_t i, uint64_t x) const {
  RSTORE_DCHECK(i < params_.size());
  uint64_t r = MulMod61(params_[i].a, x % kMersenne61);
  r += params_[i].b;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

}  // namespace rstore
