#ifndef RSTORE_COMMON_METRICS_H_
#define RSTORE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace rstore {

/// Process-wide observability registry: named counters, gauges, and
/// fixed-boundary histograms.
///
/// Design goals, in order:
///   1. Near-zero overhead on instrumented hot paths. Every metric update is
///      a single relaxed atomic RMW on a pre-resolved pointer; the registry
///      mutex (kLockRankMetrics, the lowest non-leaf rank) is taken only on
///      first registration and during export. An instrumentation point that
///      is never reached costs nothing; one that caches its handle in a
///      function-local static costs one acquire load per call thereafter.
///   2. Machine-readable export. The same snapshot renders as Prometheus
///      text exposition format and as a JSON object, so benchmarks, the CLI
///      shell, and CI can all scrape the identical numbers.
///   3. Stable handles. Registered metrics are never deleted or moved;
///      pointers returned by GetCounter/GetGauge/GetHistogram stay valid for
///      the registry's lifetime (process lifetime for Default()).
///
/// Naming convention (see DESIGN.md "Observability"):
///   rstore_<subsystem>_<what>[_<unit>][_total]
/// e.g. rstore_kvs_bytes_read_total, rstore_query_simulated_micros.
/// Counters end in _total; histograms name their unit. The <subsystem> token
/// is what StoreReport uses to group registry counters into layer blocks.

/// Monotonically increasing counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Counters are monotone in production; only tests may zero one (in place,
  /// so cached handles survive).
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  // Relaxed monotone tally; readers tolerate staleness. analyze:atomic
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed value (queue depths, resident bytes, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // Relaxed last-writer-wins snapshot value. analyze:atomic
  std::atomic<int64_t> value_{0};
};

/// The exemplar attached to a histogram bucket: the last observation that
/// landed there, with its trace/query id and latency attribution snapshot.
/// Exemplars turn a tail bucket from a count into a lead — "bucket le=65536
/// last saw query 1234, which spent 80% of its time queued".
struct HistogramExemplar {
  bool valid = false;
  /// Trace/query id of the observation (FlightRecorder::NextQueryId()).
  uint64_t id = 0;
  uint64_t value = 0;
  /// Attribution of `value` (see QueryStats): queue + service + retry -
  /// hedge == value for latency histograms; zero elsewhere.
  uint64_t queue_wait_us = 0;
  uint64_t service_us = 0;
  uint64_t retry_penalty_us = 0;
  uint64_t hedge_delta_us = 0;
};

/// Histogram over fixed upper-bound boundaries chosen at registration.
/// An observation lands in the first bucket whose boundary is >= the value;
/// values above the last boundary land in the implicit +Inf bucket.
class Histogram {
 public:
  /// `boundaries` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<uint64_t> boundaries);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);

  /// Observe() plus an exemplar recorded on the bucket the value lands in
  /// (last writer wins). The tally itself stays relaxed-atomic; only the
  /// exemplar slot takes a leaf-rank mutex, and callers that never pass
  /// exemplars never touch it (storage is allocated on first use).
  void ObserveWithExemplar(uint64_t value, const HistogramExemplar& exemplar);

  /// `count` geometrically spaced upper bounds starting at `start`, each
  /// multiplied by `factor` (rounded up to stay strictly increasing). The
  /// workhorse for latency/byte histograms at registration sites.
  static std::vector<uint64_t> ExponentialBoundaries(uint64_t start,
                                                     double factor,
                                                     size_t count);

  const std::vector<uint64_t>& boundaries() const { return boundaries_; }
  /// Per-bucket counts; size() == boundaries().size() + 1 (last is +Inf).
  std::vector<uint64_t> bucket_counts() const;
  /// Per-bucket exemplars (same indexing as bucket_counts); empty when no
  /// observation ever carried an exemplar.
  std::vector<HistogramExemplar> exemplars() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Zeroes all buckets in place (test isolation; handles survive).
  void ResetForTest();

 private:
  std::vector<uint64_t> boundaries_;
  // Relaxed per-bucket tallies; totals across the three fields may be
  // transiently inconsistent during concurrent Observe. analyze:atomic
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};  // analyze:atomic (see buckets_)
  std::atomic<uint64_t> sum_{0};    // analyze:atomic (see buckets_)
  /// Leaf rank: safe to acquire from any path, including under the
  /// registry mutex during Snapshot().
  mutable Mutex exemplar_mu_{kLockRankLeaf, "Histogram::exemplar_mu_"};
  /// Lazily sized to boundaries_.size() + 1 on the first exemplar.
  std::vector<HistogramExemplar> exemplars_ RSTORE_GUARDED_BY(exemplar_mu_);
};

/// Free-function alias of Histogram::ExponentialBoundaries, kept for
/// existing callers; new instrumentation should use the member form.
std::vector<uint64_t> ExponentialBoundaries(uint64_t start, double factor,
                                            size_t count);

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::vector<uint64_t> boundaries;
    std::vector<uint64_t> bucket_counts;  // boundaries.size() + 1 entries
    /// Per-bucket exemplars, index-aligned with bucket_counts; empty when
    /// the histogram never saw an exemplar-carrying observation.
    std::vector<HistogramExemplar> exemplars;
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by all built-in instrumentation points.
  static MetricsRegistry& Default();

  /// Finds or creates the named metric. RSTORE_CHECKs that the name is not
  /// already registered as a different kind (a name is one kind, forever).
  /// For histograms, the boundaries of later calls are ignored: first
  /// registration wins.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> boundaries);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (one # TYPE line per family;
  /// histograms expand to _bucket{le=...}/_sum/_count series).
  std::string PrometheusText() const;

  /// JSON object: {"counters":{name:value,...},"gauges":{...},
  /// "histograms":{name:{"boundaries":[...],"counts":[...],
  /// "sum":n,"count":n},...}}.
  std::string JsonSnapshot() const;

  /// Zeroes every registered counter/gauge/histogram (registration and
  /// handles survive). Intended for tests and bench warmup isolation.
  void ResetForTest();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_{kLockRankMetrics, "MetricsRegistry::mu_"};
  /// Name -> metric. Node-based map: entries never move once created, so
  /// returned pointers stay stable without further locking.
  std::map<std::string, Entry> metrics_ RSTORE_GUARDED_BY(mu_);
};

}  // namespace rstore

#endif  // RSTORE_COMMON_METRICS_H_
