#include "common/random.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace rstore {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  // Seed the four lanes via splitmix64 per the xoshiro authors' guidance;
  // guarantees a non-zero state for any seed.
  uint64_t sm = seed;
  for (auto& lane : s_) {
    sm += 0x9e3779b97f4a7c15ull;
    lane = Mix64(sm);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  RSTORE_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  RSTORE_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::vector<uint64_t> Random::SampleWithoutReplacement(uint64_t n,
                                                       uint64_t count) {
  RSTORE_CHECK(count <= n);
  // Floyd's algorithm: O(count) expected time and memory.
  std::vector<uint64_t> picked;
  picked.reserve(count);
  for (uint64_t j = n - count; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    bool seen = false;
    for (uint64_t p : picked) {
      if (p == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  return picked;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  RSTORE_CHECK(n >= 1);
  RSTORE_CHECK(theta > 0 && theta != 1.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfGenerator::HInverse(double u) const {
  return std::pow(1.0 + u * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Sample(Random* rng) {
  // Hörmann's rejection-inversion ("Rejection-inversion to generate variates
  // from monotone discrete distributions", 1996).
  for (;;) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -theta_)) {
      return k - 1;  // 0-based rank
    }
  }
}

}  // namespace rstore
