#include "common/flight_recorder.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace rstore {

namespace {

/// Names come from code and trace spans, but the dump is a machine-readable
/// contract (tools/latency_report.py parses it): escape defensively.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendRecordJson(const FlightRecord& r, std::string* out) {
  *out += StringPrintf(
      "{\"id\":%llu,\"name\":\"%s\",\"total_us\":%llu,"
      "\"queue_wait_us\":%llu,\"service_us\":%llu,"
      "\"retry_penalty_us\":%llu,\"hedge_delta_us\":%llu,"
      "\"retries\":%llu,\"hedges\":%llu,\"hedge_wins\":%llu,"
      "\"timeouts\":%llu,\"missing_chunks\":%llu",
      (unsigned long long)r.id, JsonEscape(r.name).c_str(),
      (unsigned long long)r.total_us, (unsigned long long)r.queue_wait_us,
      (unsigned long long)r.service_us, (unsigned long long)r.retry_penalty_us,
      (unsigned long long)r.hedge_delta_us, (unsigned long long)r.retries,
      (unsigned long long)r.hedges, (unsigned long long)r.hedge_wins,
      (unsigned long long)r.timeouts, (unsigned long long)r.missing_chunks);
  *out += ",\"degradation\":[";
  for (size_t i = 0; i < r.degradation.size(); ++i) {
    *out += StringPrintf("%s\"%s\"", i == 0 ? "" : ",",
                         JsonEscape(r.degradation[i]).c_str());
  }
  *out += "],\"spans\":[";
  for (size_t i = 0; i < r.spans.size(); ++i) {
    const FlightSpan& span = r.spans[i];
    *out += StringPrintf(
        "%s{\"name\":\"%s\",\"depth\":%u,\"sim_start_us\":%llu,"
        "\"sim_end_us\":%llu}",
        i == 0 ? "" : ",", JsonEscape(span.name).c_str(), span.depth,
        (unsigned long long)span.sim_start_us,
        (unsigned long long)span.sim_end_us);
  }
  *out += "]}";
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : options_(options) {
  RSTORE_CHECK(options_.ring_size > 0);
  RSTORE_CHECK(options_.slowest_size > 0);
  RSTORE_CHECK(options_.sample_ring_size > 0);
  MutexLock lock(mu_);
  recent_.resize(options_.ring_size);
  samples_.resize(options_.sample_ring_size);
  slowest_.reserve(options_.slowest_size);
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::Record(FlightRecord record) {
  MutexLock lock(mu_);
  // Slowest-N selection first (the ring steals the record afterwards).
  // Strictly-greater comparison keeps the earliest of tied records.
  if (slowest_.size() < options_.slowest_size) {
    slowest_.push_back(record);
    std::stable_sort(slowest_.begin(), slowest_.end(),
                     [](const FlightRecord& a, const FlightRecord& b) {
                       return a.total_us > b.total_us;
                     });
  } else if (record.total_us > slowest_.back().total_us) {
    slowest_.back() = record;
    std::stable_sort(slowest_.begin(), slowest_.end(),
                     [](const FlightRecord& a, const FlightRecord& b) {
                       return a.total_us > b.total_us;
                     });
  }
  recent_[recent_pos_] = std::move(record);
  recent_pos_ = (recent_pos_ + 1) % recent_.size();
  ++recent_seen_;
}

void FlightRecorder::AddSample(const FlightSample& sample) {
  MutexLock lock(mu_);
  samples_[sample_pos_] = sample;
  sample_pos_ = (sample_pos_ + 1) % samples_.size();
  ++samples_seen_;
}

std::vector<FlightRecord> FlightRecorder::Recent() const {
  MutexLock lock(mu_);
  const size_t n = std::min<uint64_t>(recent_seen_, recent_.size());
  std::vector<FlightRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Newest first: walk backwards from the write cursor.
    const size_t idx = (recent_pos_ + recent_.size() - 1 - i) % recent_.size();
    out.push_back(recent_[idx]);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::Slowest() const {
  MutexLock lock(mu_);
  return slowest_;
}

std::vector<FlightSample> FlightRecorder::Samples() const {
  MutexLock lock(mu_);
  const size_t n = std::min<uint64_t>(samples_seen_, samples_.size());
  std::vector<FlightSample> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Oldest first: the write cursor points at the oldest slot when full.
    const size_t idx = (sample_pos_ + samples_.size() - n + i) % samples_.size();
    out.push_back(samples_[idx]);
  }
  return out;
}

std::string FlightRecorder::DumpJson() const {
  const std::vector<FlightRecord> slowest = Slowest();
  const std::vector<FlightRecord> recent = Recent();
  const std::vector<FlightSample> samples = Samples();
  std::string out = "{\"slowest\":[";
  for (size_t i = 0; i < slowest.size(); ++i) {
    if (i > 0) out += ",";
    AppendRecordJson(slowest[i], &out);
  }
  out += "],\"recent\":[";
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) out += ",";
    AppendRecordJson(recent[i], &out);
  }
  out += "],\"samples\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const FlightSample& s = samples[i];
    out += StringPrintf(
        "%s{\"sim_us\":%llu,\"node\":%u,\"busy_horizon_us\":%llu,"
        "\"backlog_us\":%llu}",
        i == 0 ? "" : ",", (unsigned long long)s.sim_us, s.node,
        (unsigned long long)s.busy_horizon_us,
        (unsigned long long)s.backlog_us);
  }
  out += "]}";
  return out;
}

void FlightRecorder::ResetForTest() {
  MutexLock lock(mu_);
  for (FlightRecord& r : recent_) r = FlightRecord();
  recent_pos_ = 0;
  recent_seen_ = 0;
  slowest_.clear();
  for (FlightSample& s : samples_) s = FlightSample();
  sample_pos_ = 0;
  samples_seen_ = 0;
}

}  // namespace rstore
