#ifndef RSTORE_COMMON_STATUS_H_
#define RSTORE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rstore {

/// Outcome of an operation that can fail.
///
/// RStore does not throw exceptions across API boundaries; every fallible
/// public function returns a Status (or a Result<T>, see result.h). The
/// set of codes mirrors the failure classes that actually arise in the
/// system: lookups that miss (kNotFound), malformed input or configuration
/// (kInvalidArgument), corrupted on-disk/on-wire payloads (kCorruption),
/// backend/KVS failures (kIOError), double-insertions (kAlreadyExists), and
/// features intentionally left out (kNotSupported).
///
/// The class is [[nodiscard]]: every function returning a Status by value is
/// implicitly nodiscard, so silently dropping an error is a compile warning
/// (an error under RSTORE_WERROR). Use RSTORE_RETURN_IF_ERROR to propagate.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kCorruption = 3,
    kIOError = 4,
    kAlreadyExists = 5,
    kNotSupported = 6,
    kAborted = 7,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] bool IsNotFound() const { return code_ == Code::kNotFound; }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == Code::kInvalidArgument;
  }
  [[nodiscard]] bool IsCorruption() const {
    return code_ == Code::kCorruption;
  }
  [[nodiscard]] bool IsIOError() const { return code_ == Code::kIOError; }
  [[nodiscard]] bool IsAlreadyExists() const {
    return code_ == Code::kAlreadyExists;
  }
  [[nodiscard]] bool IsNotSupported() const {
    return code_ == Code::kNotSupported;
  }
  [[nodiscard]] bool IsAborted() const { return code_ == Code::kAborted; }

  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" string, e.g. for logging.
  [[nodiscard]] std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Standard early-exit plumbing for Status-based code.
#define RSTORE_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::rstore::Status _rstore_status = (expr);     \
    if (!_rstore_status.ok()) return _rstore_status; \
  } while (false)

}  // namespace rstore

#endif  // RSTORE_COMMON_STATUS_H_
