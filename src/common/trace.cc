#include "common/trace.h"

#include <chrono>

#include "common/logging.h"
#include "common/string_util.h"

namespace rstore {

namespace {

int64_t SteadyNowMicros() {
  // Span timestamps are observability-only: they annotate traces with real
  // elapsed time and never feed scheduling, retries, or chaos decisions, so
  // reading the clock here cannot perturb deterministic replay.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now()  // analyze:allow-sim-clock-purity
                 .time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One complete ("X") trace event. Chrome nests same-track events by
/// timestamp containment, so parent/child structure survives the flattening.
void AppendCompleteEvent(std::string* out, const TraceSpan& span, int pid,
                         int64_t ts, int64_t dur) {
  *out += StringPrintf(
      "{\"name\":\"%s\",\"cat\":\"rstore\",\"ph\":\"X\",\"pid\":%d,"
      "\"tid\":1,\"ts\":%lld,\"dur\":%lld,\"args\":{",
      JsonEscape(span.name).c_str(), pid, (long long)ts, (long long)dur);
  *out += StringPrintf("\"span_id\":%u", span.id);
  if (span.parent != TraceSpan::kNoParent) {
    *out += StringPrintf(",\"parent_id\":%u", span.parent);
  }
  for (const auto& [key, value] : span.attributes) {
    *out += StringPrintf(",\"%s\":\"%s\"", JsonEscape(key).c_str(),
                         JsonEscape(value).c_str());
  }
  *out += "}}";
}

}  // namespace

TraceContext::TraceContext() : wall_base_us_(SteadyNowMicros()) {}

int64_t TraceContext::WallNowMicros() const {
  return SteadyNowMicros() - wall_base_us_;
}

uint32_t TraceContext::StartSpan(std::string name) {
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size());
  if (!open_.empty()) {
    span.parent = open_.back();
    span.depth = spans_[span.parent].depth + 1;
  }
  span.name = std::move(name);
  span.wall_start_us = WallNowMicros();
  span.sim_start_us = sim_now_us_;
  spans_.push_back(std::move(span));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void TraceContext::EndSpan(uint32_t id) {
  RSTORE_CHECK(id < spans_.size()) << "unknown span id " << id;
  RSTORE_DCHECK(!open_.empty() && open_.back() == id)
      << "spans must close LIFO; closing " << id << " while "
      << (open_.empty() ? -1 : static_cast<int>(open_.back()))
      << " is innermost";
  // Release builds recover from mis-nesting by force-closing intervening
  // spans instead of corrupting the open stack.
  while (!open_.empty()) {
    uint32_t innermost = open_.back();
    open_.pop_back();
    spans_[innermost].wall_end_us = WallNowMicros();
    spans_[innermost].sim_end_us = sim_now_us_;
    if (innermost == id) break;
  }
}

void TraceContext::Annotate(uint32_t id, std::string key, std::string value) {
  RSTORE_CHECK(id < spans_.size()) << "unknown span id " << id;
  spans_[id].attributes.emplace_back(std::move(key), std::move(value));
}

uint32_t TraceContext::AddSimulatedSpan(std::string name,
                                        uint64_t sim_start_us,
                                        uint64_t sim_end_us) {
  RSTORE_DCHECK(sim_start_us <= sim_end_us);
  TraceSpan span;
  span.id = static_cast<uint32_t>(spans_.size());
  if (!open_.empty()) {
    span.parent = open_.back();
    span.depth = spans_[span.parent].depth + 1;
  }
  span.name = std::move(name);
  const int64_t wall_now = WallNowMicros();
  span.wall_start_us = wall_now;
  span.wall_end_us = wall_now;
  span.sim_start_us = sim_start_us;
  span.sim_end_us = sim_end_us;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

std::string TraceContext::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"wall clock\"}},"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"simulated clock\"}}";
  for (const TraceSpan& span : spans_) {
    out += ",";
    AppendCompleteEvent(&out, span, /*pid=*/1, span.wall_start_us,
                        span.wall_duration_us());
    out += ",";
    AppendCompleteEvent(&out, span, /*pid=*/2,
                        static_cast<int64_t>(span.sim_start_us),
                        static_cast<int64_t>(span.sim_duration_us()));
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceContext::ToDebugString() const {
  std::string out;
  for (const TraceSpan& span : spans_) {
    out += StringPrintf("%*s%s  sim=%lluus wall=%lldus", span.depth * 2, "",
                        span.name.c_str(),
                        (unsigned long long)span.sim_duration_us(),
                        (long long)span.wall_duration_us());
    for (const auto& [key, value] : span.attributes) {
      out += StringPrintf("  %s=%s", key.c_str(), value.c_str());
    }
    out += "\n";
  }
  return out;
}

}  // namespace rstore
