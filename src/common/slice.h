#ifndef RSTORE_COMMON_SLICE_H_
#define RSTORE_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

#include "common/logging.h"

namespace rstore {

/// A non-owning view over a contiguous byte range, in the LevelDB/RocksDB
/// tradition. Cheap to copy; the referenced storage must outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    RSTORE_DCHECK(i < size_);
    return data_[i];
  }

  /// Drops the first `n` bytes from the view.
  void RemovePrefix(size_t n) {
    RSTORE_DCHECK(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  /// Three-way bytewise comparison: <0, 0, >0 like memcmp.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace rstore

#endif  // RSTORE_COMMON_SLICE_H_
