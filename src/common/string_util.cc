#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace rstore {

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringPrintf("%llu B", (unsigned long long)bytes);
  return StringPrintf("%.2f %s", value, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 1e-3) return StringPrintf("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StringPrintf("%.2f ms", seconds * 1e3);
  return StringPrintf("%.3f s", seconds);
}

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace rstore
