#ifndef RSTORE_COMMON_TRACE_H_
#define RSTORE_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rstore {

/// One node of a query's span tree. Spans carry two clocks:
///   - wall time: microseconds since the context was created (steady clock),
///     i.e. what the process actually spent;
///   - simulated time: the LatencyModel's modeled backend cost, advanced
///     explicitly by the code that charges it (see TraceContext::AdvanceSim).
/// The two diverge by design — the simulator executes a 4-node MultiGet
/// serially in wall time but charges only the slowest node's share — and
/// seeing both side by side is the point of the exporter's two tracks.
struct TraceSpan {
  static constexpr uint32_t kNoParent = 0xffffffffu;

  uint32_t id = 0;
  uint32_t parent = kNoParent;
  uint32_t depth = 0;
  std::string name;
  /// Free-form key/value annotations (counts, byte totals, node ids).
  std::vector<std::pair<std::string, std::string>> attributes;
  int64_t wall_start_us = 0;
  int64_t wall_end_us = 0;
  uint64_t sim_start_us = 0;
  uint64_t sim_end_us = 0;

  int64_t wall_duration_us() const { return wall_end_us - wall_start_us; }
  uint64_t sim_duration_us() const { return sim_end_us - sim_start_us; }
};

/// Collects the span tree of one traced operation (a query, a flush).
///
/// NOT thread-safe: a context belongs to the thread running the traced
/// operation, and spans must close LIFO (scoped usage via ScopedSpan
/// guarantees this). Code that fans work out (ParallelFor decode, simulated
/// per-node service) records child work either from the coordinating thread
/// or via AddSimulatedSpan with explicit timestamps.
///
/// The simulated clock starts at 0 and only moves when instrumented code
/// charges modeled time (Cluster does this for every request), so a span's
/// sim_duration is exactly the modeled backend cost incurred within it.
class TraceContext {
 public:
  TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span as a child of the innermost open span (or a root).
  /// Returns its id. Prefer ScopedSpan.
  uint32_t StartSpan(std::string name);

  /// Closes `id`, stamping wall/simulated end times. Spans close LIFO.
  void EndSpan(uint32_t id);

  /// Attaches a key/value annotation to an open or closed span.
  void Annotate(uint32_t id, std::string key, std::string value);

  /// Records an already-completed child of the innermost open span covering
  /// the explicit simulated interval [sim_start, sim_end] — how simulated-
  /// parallel work (per-node MultiGet shares) enters the tree: all siblings
  /// start at the same simulated instant even though the coordinator
  /// executed them serially in wall time.
  uint32_t AddSimulatedSpan(std::string name, uint64_t sim_start_us,
                            uint64_t sim_end_us);

  /// The simulated clock. Advance only with modeled cost actually charged
  /// (keep it reconciled with KVStats::simulated_micros deltas).
  uint64_t sim_now_us() const { return sim_now_us_; }
  void AdvanceSim(uint64_t micros) { sim_now_us_ += micros; }

  /// Wall microseconds since this context was created.
  int64_t WallNowMicros() const;

  /// Every span recorded so far, in creation order (parents before
  /// children). Open spans have wall_end_us == sim_end_us == 0 stamps
  /// pending; export only after the tree is fully closed.
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Chrome trace-event JSON (load via about://tracing or Perfetto).
  /// Each span becomes two complete ("ph":"X") events: one on the
  /// "wall clock" process track and one on the "simulated clock" track.
  std::string ToChromeTraceJson() const;

  /// Human-readable indented tree with both durations per span.
  std::string ToDebugString() const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<uint32_t> open_;  // innermost last
  uint64_t sim_now_us_ = 0;
  int64_t wall_base_us_ = 0;  // steady-clock origin of this context
};

/// RAII span. A null context makes every operation a no-op, so hot paths
/// stay branch-cheap when tracing is off:
///
///   ScopedSpan span(trace, "query.fetch_chunks");   // trace may be null
///   span.Annotate("chunks", std::to_string(ids.size()));
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* context, const char* name)
      : context_(context),
        id_(context == nullptr ? TraceSpan::kNoParent
                               : context->StartSpan(name)) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes the span early (e.g. sequential phases in one scope); the
  /// destructor then does nothing. Idempotent.
  void End() {
    if (context_ != nullptr) context_->EndSpan(id_);
    context_ = nullptr;
  }

  void Annotate(const std::string& key, std::string value) {
    if (context_ != nullptr) context_->Annotate(id_, key, std::move(value));
  }

  TraceContext* context() const { return context_; }
  uint32_t id() const { return id_; }

 private:
  TraceContext* context_;
  uint32_t id_;
};

}  // namespace rstore

#endif  // RSTORE_COMMON_TRACE_H_
