#include "common/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace rstore {

namespace {

/// Metric names are code-controlled identifiers, but the JSON exporter is a
/// machine-readable contract: escape defensively so output always parses.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> boundaries)
    : boundaries_(std::move(boundaries)) {
  RSTORE_CHECK(!boundaries_.empty()) << "histogram needs >= 1 boundary";
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    RSTORE_CHECK(boundaries_[i - 1] < boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(boundaries_.size() + 1);
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(uint64_t value) {
  // First bucket whose upper bound covers the value (le semantics); values
  // above the last boundary land in the +Inf bucket at index size().
  size_t bucket = std::lower_bound(boundaries_.begin(), boundaries_.end(),
                                   value) -
                  boundaries_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::ObserveWithExemplar(uint64_t value,
                                    const HistogramExemplar& exemplar) {
  const size_t bucket = std::lower_bound(boundaries_.begin(),
                                         boundaries_.end(), value) -
                        boundaries_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  MutexLock lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(boundaries_.size() + 1);
  exemplars_[bucket] = exemplar;
  exemplars_[bucket].valid = true;
  exemplars_[bucket].value = value;
}

std::vector<HistogramExemplar> Histogram::exemplars() const {
  MutexLock lock(exemplar_mu_);
  return exemplars_;
}

void Histogram::ResetForTest() {
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  MutexLock lock(exemplar_mu_);
  exemplars_.clear();
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(boundaries_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<uint64_t> Histogram::ExponentialBoundaries(uint64_t start,
                                                       double factor,
                                                       size_t count) {
  RSTORE_CHECK(start > 0 && factor > 1.0 && count > 0);
  std::vector<uint64_t> out;
  out.reserve(count);
  double bound = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    uint64_t rounded = static_cast<uint64_t>(bound);
    if (!out.empty() && rounded <= out.back()) rounded = out.back() + 1;
    out.push_back(rounded);
    bound *= factor;
  }
  return out;
}

std::vector<uint64_t> ExponentialBoundaries(uint64_t start, double factor,
                                            size_t count) {
  return Histogram::ExponentialBoundaries(start, factor, count);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr) {
    RSTORE_CHECK(entry.gauge == nullptr && entry.histogram == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    entry.kind = Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.gauge == nullptr) {
    RSTORE_CHECK(entry.counter == nullptr && entry.histogram == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    entry.kind = Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> boundaries) {
  MutexLock lock(mu_);
  Entry& entry = metrics_[name];
  if (entry.histogram == nullptr) {
    RSTORE_CHECK(entry.counter == nullptr && entry.gauge == nullptr)
        << "metric '" << name << "' already registered as a different kind";
    entry.kind = Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(boundaries));
  }
  return entry.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters.emplace_back(name, entry.counter->value());
        break;
      case Kind::kGauge:
        snapshot.gauges.emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramValue h;
        h.name = name;
        h.boundaries = entry.histogram->boundaries();
        h.bucket_counts = entry.histogram->bucket_counts();
        h.exemplars = entry.histogram->exemplars();
        h.count = entry.histogram->count();
        h.sum = entry.histogram->sum();
        snapshot.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snapshot;
}

std::string MetricsRegistry::PrometheusText() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StringPrintf("# TYPE %s counter\n%s %llu\n", name.c_str(),
                        name.c_str(), (unsigned long long)value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StringPrintf("# TYPE %s gauge\n%s %lld\n", name.c_str(),
                        name.c_str(), (long long)value);
  }
  for (const MetricsSnapshot::HistogramValue& h : snapshot.histograms) {
    out += StringPrintf("# TYPE %s histogram\n", h.name.c_str());
    // OpenMetrics-style exemplar suffix: "<series> # {trace_id=...} value".
    auto exemplar_suffix = [&h](size_t bucket) -> std::string {
      if (bucket >= h.exemplars.size() || !h.exemplars[bucket].valid) {
        return "";
      }
      const HistogramExemplar& e = h.exemplars[bucket];
      return StringPrintf(" # {trace_id=\"%llu\"} %llu",
                          (unsigned long long)e.id,
                          (unsigned long long)e.value);
    };
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.boundaries.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out += StringPrintf("%s_bucket{le=\"%llu\"} %llu%s\n", h.name.c_str(),
                          (unsigned long long)h.boundaries[i],
                          (unsigned long long)cumulative,
                          exemplar_suffix(i).c_str());
    }
    cumulative += h.bucket_counts.back();
    out += StringPrintf("%s_bucket{le=\"+Inf\"} %llu%s\n", h.name.c_str(),
                        (unsigned long long)cumulative,
                        exemplar_suffix(h.boundaries.size()).c_str());
    out += StringPrintf("%s_sum %llu\n", h.name.c_str(),
                        (unsigned long long)h.sum);
    out += StringPrintf("%s_count %llu\n", h.name.c_str(),
                        (unsigned long long)h.count);
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += StringPrintf("%s\"%s\":%llu", i == 0 ? "" : ",",
                        JsonEscape(snapshot.counters[i].first).c_str(),
                        (unsigned long long)snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += StringPrintf("%s\"%s\":%lld", i == 0 ? "" : ",",
                        JsonEscape(snapshot.gauges[i].first).c_str(),
                        (long long)snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const MetricsSnapshot::HistogramValue& h = snapshot.histograms[i];
    out += StringPrintf("%s\"%s\":{\"boundaries\":[", i == 0 ? "" : ",",
                        JsonEscape(h.name).c_str());
    for (size_t b = 0; b < h.boundaries.size(); ++b) {
      out += StringPrintf("%s%llu", b == 0 ? "" : ",",
                          (unsigned long long)h.boundaries[b]);
    }
    out += "],\"counts\":[";
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      out += StringPrintf("%s%llu", b == 0 ? "" : ",",
                          (unsigned long long)h.bucket_counts[b]);
    }
    out += "],\"exemplars\":[";
    bool first_exemplar = true;
    for (size_t b = 0; b < h.exemplars.size(); ++b) {
      const HistogramExemplar& e = h.exemplars[b];
      if (!e.valid) continue;
      out += StringPrintf(
          "%s{\"bucket\":%zu,\"id\":%llu,\"value\":%llu,"
          "\"queue_wait_us\":%llu,\"service_us\":%llu,"
          "\"retry_penalty_us\":%llu,\"hedge_delta_us\":%llu}",
          first_exemplar ? "" : ",", b, (unsigned long long)e.id,
          (unsigned long long)e.value, (unsigned long long)e.queue_wait_us,
          (unsigned long long)e.service_us,
          (unsigned long long)e.retry_penalty_us,
          (unsigned long long)e.hedge_delta_us);
      first_exemplar = false;
    }
    out += StringPrintf("],\"sum\":%llu,\"count\":%llu}",
                        (unsigned long long)h.sum,
                        (unsigned long long)h.count);
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  // In place: handles cached at instrumentation sites must stay valid.
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->ResetForTest();
        break;
      case Kind::kGauge:
        entry.gauge->Set(0);
        break;
      case Kind::kHistogram:
        entry.histogram->ResetForTest();
        break;
    }
  }
}

}  // namespace rstore
