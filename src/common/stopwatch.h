#ifndef RSTORE_COMMON_STOPWATCH_H_
#define RSTORE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rstore {

/// Wall-clock timer for benchmark harnesses. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rstore

#endif  // RSTORE_COMMON_STOPWATCH_H_
