#ifndef RSTORE_COMMON_RESULT_H_
#define RSTORE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace rstore {

/// A value-or-Status union, analogous to absl::StatusOr / arrow::Result.
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Callers
/// must check ok() (or status()) before dereferencing. Typical use:
///
///   Result<Chunk> r = store.FetchChunk(id);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a failed Result. `status` must not be OK: an OK status with
  /// no value is a contract violation.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    RSTORE_DCHECK(!status_.ok());
  }

  /// Constructs a successful Result holding `value`.
  Result(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Pre-condition: ok().
  [[nodiscard]] const T& value() const& {
    RSTORE_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    RSTORE_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    RSTORE_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this Result failed.
  [[nodiscard]] T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on failure returns its Status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define RSTORE_ASSIGN_OR_RETURN(lhs, expr)       \
  auto _rstore_result_##__LINE__ = (expr);       \
  if (!_rstore_result_##__LINE__.ok())           \
    return _rstore_result_##__LINE__.status();   \
  lhs = std::move(_rstore_result_##__LINE__).value();

}  // namespace rstore

#endif  // RSTORE_COMMON_RESULT_H_
