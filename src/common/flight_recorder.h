#ifndef RSTORE_COMMON_FLIGHT_RECORDER_H_
#define RSTORE_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"

namespace rstore {

/// One span of a flight record's serialized trace tree, flattened in
/// pre-order (`depth` reconstructs the nesting). Times are on the query's
/// simulated clock, relative to the query start.
struct FlightSpan {
  std::string name;
  uint32_t depth = 0;
  uint64_t sim_start_us = 0;
  uint64_t sim_end_us = 0;
};

/// Everything the recorder keeps about one finished query: identity, total
/// simulated latency and its attribution (queue_wait + service +
/// retry_penalty - hedge_delta == total_us), fault-path counters, the
/// degradation report, and the serialized span tree.
struct FlightRecord {
  uint64_t id = 0;
  std::string name;
  uint64_t total_us = 0;
  uint64_t queue_wait_us = 0;
  uint64_t service_us = 0;
  uint64_t retry_penalty_us = 0;
  uint64_t hedge_delta_us = 0;
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t timeouts = 0;
  uint64_t missing_chunks = 0;
  /// Best-effort degradation reasons (empty when the result was complete).
  std::vector<std::string> degradation;
  std::vector<FlightSpan> spans;
};

/// One sample of the async engine's per-node saturation time series:
/// how far ahead of `sim_us` the node's FIFO queue is booked.
struct FlightSample {
  uint64_t sim_us = 0;
  uint32_t node = 0;
  /// Virtual instant at which the node drains everything it has accepted.
  uint64_t busy_horizon_us = 0;
  /// max(busy_horizon_us - sim_us, 0): queued work, in micros of service.
  uint64_t backlog_us = 0;
};

struct FlightRecorderOptions {
  /// Most-recent queries kept (ring buffer, oldest evicted first).
  size_t ring_size = 64;
  /// Slowest queries kept (selection by total_us; ties keep the earlier).
  size_t slowest_size = 16;
  /// Saturation samples kept (ring buffer).
  size_t sample_ring_size = 256;
};

/// Always-on slow-query log: a fixed-size ring of the most recent queries
/// plus a selection of the slowest ones, each with full latency attribution
/// and its span tree, and a bounded time series of per-node saturation
/// samples. Everything is bounded, so recording costs O(record size) and
/// the process-wide Default() instance can stay on permanently.
///
/// Thread-safe. The internal mutex ranks below kLockRankMetrics (see
/// sync.h): completion paths may record while holding subsystem locks, and
/// the recorder never calls out while holding it.
class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderOptions& options =
                              FlightRecorderOptions());

  /// Process-wide instance (like MetricsRegistry::Default()).
  static FlightRecorder& Default();

  /// Monotonic query ids, also used as exemplar trace ids (see metrics.h).
  uint64_t NextQueryId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Records one finished query in the recent ring and, if it qualifies,
  /// the slowest selection.
  void Record(FlightRecord record);

  /// Appends one saturation sample to the time-series ring.
  void AddSample(const FlightSample& sample);

  /// Most-recent queries, newest first.
  std::vector<FlightRecord> Recent() const;
  /// Slowest queries, slowest first.
  std::vector<FlightRecord> Slowest() const;
  /// Saturation samples, oldest first.
  std::vector<FlightSample> Samples() const;

  /// {"slowest": [...], "recent": [...], "samples": [...]} — the dump
  /// tools/latency_report.py renders.
  std::string DumpJson() const;

  /// Drops all records and samples (not the id counter); test isolation.
  void ResetForTest();

 private:
  const FlightRecorderOptions options_;
  /// Lock-free id source: ids must be claimable from any hot path without
  /// touching the ring lock. analyze:atomic
  std::atomic<uint64_t> next_id_{0};

  mutable Mutex mu_{kLockRankFlightRecorder, "FlightRecorder::mu_"};
  /// Circular buffer of the ring_size most recent records.
  std::vector<FlightRecord> recent_ RSTORE_GUARDED_BY(mu_);
  size_t recent_pos_ RSTORE_GUARDED_BY(mu_) = 0;
  uint64_t recent_seen_ RSTORE_GUARDED_BY(mu_) = 0;
  /// Sorted by total_us descending, at most slowest_size entries.
  std::vector<FlightRecord> slowest_ RSTORE_GUARDED_BY(mu_);
  /// Circular buffer of the sample_ring_size most recent samples.
  std::vector<FlightSample> samples_ RSTORE_GUARDED_BY(mu_);
  size_t sample_pos_ RSTORE_GUARDED_BY(mu_) = 0;
  uint64_t samples_seen_ RSTORE_GUARDED_BY(mu_) = 0;
};

}  // namespace rstore

#endif  // RSTORE_COMMON_FLIGHT_RECORDER_H_
