#ifndef RSTORE_CORE_OPTIONS_H_
#define RSTORE_CORE_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "compress/compressor.h"

namespace rstore {

class ChunkCache;
class Executor;

/// The partitioning algorithms of paper §3, plus the §2.2 baselines.
enum class PartitionAlgorithm {
  /// §3.2: bottom-up traversal of the version tree, chunking records by the
  /// number of consecutive versions they share. The paper's best performer.
  kBottomUp,
  /// §3.1: min-hash shingles over each record's version set, sorted
  /// lexicographically.
  kShingle,
  /// §3.3: greedy depth-first traversal.
  kDepthFirst,
  /// §3.3: greedy breadth-first traversal (always <= DepthFirst in quality,
  /// kept as the paper's ablation).
  kBreadthFirst,
  /// §2.2 baseline: per-version delta objects, git-style. Version retrieval
  /// replays the whole root-to-version chain.
  kDeltaBaseline,
  /// §2.2 baseline: one group per primary key ("sub-chunk approach").
  /// Version retrieval must touch every group.
  kSubChunkBaseline,
  /// §2.2 baseline: every record stored individually under its composite
  /// key ("single address space").
  kSingleAddressSpace,
};

const char* PartitionAlgorithmName(PartitionAlgorithm algorithm);

/// How queries behave when the backend cannot serve some chunks (replicas
/// down, retries exhausted, requests timed out).
enum class ReadMode {
  /// Any unfetchable chunk fails the whole query (the default: queries are
  /// exact or they are errors).
  kStrict,
  /// GetVersion/GetRange return the records of every chunk that could be
  /// fetched and report the rest in the QueryDegradation out-param and the
  /// missing_chunks stat. Point and history queries stay strict.
  kBestEffort,
};

/// Tuning knobs of the RStore layer (paper §2.4-§2.5). The defaults mirror
/// the paper's main configuration: 1 MB chunks, 25 % allowed overflow, no
/// record-level compression (k = 1), BOTTOM-UP partitioning.
struct Options {
  PartitionAlgorithm algorithm = PartitionAlgorithm::kBottomUp;

  /// Target chunk size C. "we chose this chunk size since it provides a good
  /// balance between the number of queries and amount of data retrieved"
  /// (§5.2, 1 MB).
  uint64_t chunk_capacity_bytes = 1 << 20;

  /// Fixed chunk size assumption: "variations of upto 25% allowed" (§2.5).
  double chunk_overflow_fraction = 0.25;

  /// Max records with the same primary key compressed together in one
  /// sub-chunk (k of §2.5 Case 2). k = 1 disables record-level compression.
  uint32_t max_sub_chunk_records = 1;

  /// Subtree size limit β for BOTTOM-UP (§3.2.1). 0 = unlimited.
  uint32_t subtree_limit = 0;

  /// Number of min-hash functions l for the shingle partitioner (§3.1).
  uint32_t shingle_count = 4;

  /// Codec applied to sub-chunk payload blobs.
  CompressionType compression = CompressionType::kLZ;

  /// Commits accumulate in the delta store and are partitioned in batches of
  /// this many versions (§4, "batch size").
  uint32_t online_batch_size = 64;

  /// DELTA baseline only: delta-encode each updated record against the
  /// record it supersedes (which lives in an earlier delta object) — the
  /// record-level compression the paper's Table 1 attributes to DELTA
  /// storage (the c*d factor). Reconstruction resolves the bases during the
  /// chain replay, which is exactly why DELTA retrieval must decompress the
  /// whole chain.
  bool delta_baseline_record_compression = true;

  /// Parallelize client-side chunk decode + record extraction across worker
  /// threads. The paper's prototype "processes the retrieved chunks
  /// sequentially while constructing the query result" and lists
  /// parallelization as ongoing work (§5.5); off by default to match the
  /// evaluated system.
  bool parallel_extraction = false;

  /// Byte budget of the decoded-chunk cache on the read path. 0 (the
  /// default) disables caching entirely: every query fetches its chunks from
  /// the backend, matching the paper's evaluated prototype. When positive,
  /// the store builds a ChunkCache of this capacity at Open and all query
  /// classes consult it before issuing MultiGets.
  uint64_t cache_capacity_bytes = 0;

  /// Shard count for the chunk cache's lock striping (rounded up to a power
  /// of two). Only consulted when the store builds its own cache.
  uint32_t cache_shards = 8;

  /// Externally owned cache shared across stores (e.g. every RStore on one
  /// application server). Takes precedence over cache_capacity_bytes; each
  /// store namespaces its entries with a distinct owner id, so sharing is
  /// safe even across stores reusing chunk ids.
  std::shared_ptr<ChunkCache> chunk_cache;

  /// Ingest shard count for the parallel write path (sub-chunk compression
  /// and chunk encoding fan out across this many shards; the partitioning
  /// decision itself stays serial so results are byte-identical at every
  /// shard count). 1 (the default) keeps the fully serial paper prototype;
  /// 0 means hardware concurrency.
  uint32_t ingest_shards = 1;

  /// How many shards the encode stage may run ahead of the streaming chunk
  /// writer (the pipeline's in-flight window). Bounds memory held in encoded
  /// form; must be >= 1. Only consulted when ingest_shards > 1.
  uint32_t ingest_pipeline_depth = 2;

  /// How chunks are assigned to ingest shards: contiguous byte-balanced
  /// ranges in partition order (kOrdered, the default — preserves write
  /// locality) or hashed round-robin by chunk index (kHash — evens out
  /// pathological size skew).
  enum class IngestShardMode { kOrdered, kHash };
  IngestShardMode ingest_shard_mode = IngestShardMode::kOrdered;

  /// When set, the ingest pipeline schedules its encode/write tasks on this
  /// executor's virtual timeline instead of spawning threads — the
  /// deterministic-simulation mode (same task interleaving every run, single
  /// OS thread). Borrowed; must outlive the store and must not be running
  /// queries while a write drains (same contract as the async read path).
  Executor* ingest_executor = nullptr;

  /// Degradation policy for queries over a partially available backend
  /// (see ReadMode). Strict by default.
  ReadMode read_mode = ReadMode::kStrict;

  /// Seed for all randomized components (shingle hash family).
  uint64_t seed = 0x5253746f7265ull;  // "RStore"

  /// KVS table names: chunks and indexes live "in two distinct tables"
  /// (§2.4).
  std::string chunk_table = "rstore_chunks";
  std::string index_table = "rstore_index";
};

}  // namespace rstore

#endif  // RSTORE_CORE_OPTIONS_H_
