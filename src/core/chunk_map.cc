#include "core/chunk_map.h"

#include "common/coding.h"

namespace rstore {

void ChunkMap::Add(VersionId version, uint32_t record_index) {
  auto [it, inserted] = bitmaps_.try_emplace(version, record_count_);
  it->second.Set(record_index);
}

std::vector<VersionId> ChunkMap::Versions() const {
  std::vector<VersionId> out;
  out.reserve(bitmaps_.size());
  for (const auto& [version, bitmap] : bitmaps_) out.push_back(version);
  return out;
}

std::vector<uint32_t> ChunkMap::RecordsOf(VersionId version) const {
  auto it = bitmaps_.find(version);
  if (it == bitmaps_.end()) return {};
  return it->second.ToVector();
}

void ChunkMap::EncodeTo(std::string* out) const {
  PutVarint32(out, record_count_);
  PutVarint64(out, bitmaps_.size());
  for (const auto& [version, bitmap] : bitmaps_) {
    PutVarint32(out, version);
    bitmap.SerializeTo(out);
  }
}

Status ChunkMap::DecodeFrom(Slice* input, ChunkMap* out) {
  RSTORE_RETURN_IF_ERROR(GetVarint32(input, &out->record_count_));
  uint64_t count;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &count));
  out->bitmaps_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    VersionId version;
    RSTORE_RETURN_IF_ERROR(GetVarint32(input, &version));
    Bitmap bitmap;
    RSTORE_RETURN_IF_ERROR(Bitmap::DeserializeFrom(input, &bitmap));
    if (bitmap.size() != out->record_count_) {
      return Status::Corruption("chunk map bitmap size mismatch");
    }
    out->bitmaps_.emplace(version, std::move(bitmap));
  }
  return Status::OK();
}

}  // namespace rstore
