#include "core/placement.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rstore {

ChunkPacker::ChunkPacker(uint64_t capacity, double overflow_fraction)
    : capacity_(capacity),
      hard_limit_(static_cast<uint64_t>(
          std::llround(static_cast<double>(capacity) *
                       (1.0 + overflow_fraction)))) {
  RSTORE_CHECK(capacity > 0);
}

void ChunkPacker::Add(uint32_t item_index, uint64_t bytes) {
  bool need_new = force_new_ || bins_.empty();
  if (!need_new) {
    const Bin& current = bins_.back();
    // Closed once at capacity; an item may spill into the overflow band but
    // never start beyond it.
    if (current.bytes >= capacity_ ||
        current.bytes + bytes > hard_limit_) {
      need_new = true;
    }
  }
  if (need_new) {
    bins_.emplace_back();
    force_new_ = false;
  }
  bins_.back().items.push_back(item_index);
  bins_.back().bytes += bytes;
}

void ChunkPacker::StartNewChunk() { force_new_ = true; }

Partitioning ChunkPacker::Finish(bool merge_partials) {
  if (merge_partials) {
    // Merge under-filled bins with their *neighbours in emission order*:
    // adjacent bins come from the same or nearby versions (and similar chain
    // lengths), so order-preserving merging reduces fragmentation without
    // destroying the interval affinity the traversal built up. Full bins act
    // as barriers and pass through unchanged.
    std::vector<Bin> merged;
    for (Bin& bin : bins_) {
      if (!merged.empty() && merged.back().bytes < capacity_ &&
          merged.back().bytes + bin.bytes <= capacity_) {
        Bin& target = merged.back();
        target.items.insert(target.items.end(), bin.items.begin(),
                            bin.items.end());
        target.bytes += bin.bytes;
      } else {
        merged.push_back(std::move(bin));
      }
    }
    bins_ = std::move(merged);
  }
  Partitioning out;
  out.chunks.reserve(bins_.size());
  for (Bin& bin : bins_) {
    if (!bin.items.empty()) out.chunks.push_back(std::move(bin.items));
  }
  bins_.clear();
  force_new_ = true;
  return out;
}

std::vector<uint64_t> PerVersionSpans(const Partitioning& partitioning,
                                      const std::vector<PlacementItem>& items,
                                      const VersionGraph& graph) {
  std::vector<uint64_t> spans(graph.size(), 0);
  switch (partitioning.layout) {
    case LayoutKind::kChunked: {
      // Chunk c touches version v if any contained item lists v.
      for (const auto& chunk : partitioning.chunks) {
        std::vector<bool> touches(graph.size(), false);
        for (uint32_t item_index : chunk) {
          for (VersionId v : items[item_index].versions) touches[v] = true;
        }
        for (VersionId v = 0; v < graph.size(); ++v) {
          if (touches[v]) ++spans[v];
        }
      }
      break;
    }
    case LayoutKind::kDeltaChain: {
      // Chunks are per-version delta pieces: reconstructing v retrieves all
      // chunks of all versions on root->v. Count chunks per origin version.
      std::vector<uint64_t> chunks_of_version(graph.size(), 0);
      for (const auto& chunk : partitioning.chunks) {
        if (!chunk.empty()) {
          ++chunks_of_version[items[chunk[0]].origin_version];
        }
      }
      for (VersionId v = 0; v < graph.size(); ++v) {
        uint64_t total = 0;
        for (VersionId step : graph.PathFromRoot(v)) {
          total += chunks_of_version[step];
        }
        spans[v] = total;
      }
      break;
    }
    case LayoutKind::kSubChunkPerKey: {
      // No version index: every full-version retrieval scans all chunks.
      for (VersionId v = 0; v < graph.size(); ++v) {
        spans[v] = partitioning.chunks.size();
      }
      break;
    }
  }
  return spans;
}

uint64_t TotalVersionSpan(const Partitioning& partitioning,
                          const std::vector<PlacementItem>& items,
                          const VersionGraph& graph) {
  uint64_t total = 0;
  for (uint64_t span : PerVersionSpans(partitioning, items, graph)) {
    total += span;
  }
  return total;
}

}  // namespace rstore
