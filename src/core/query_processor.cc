#include "core/query_processor.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace rstore {

namespace {

/// Read-path registry handles, resolved once per process.
struct QueryMetrics {
  Counter* queries_total;
  Counter* chunks_fetched_total;
  Counter* bytes_fetched_total;
  Counter* simulated_micros_total;
  Counter* missing_chunks_total;
  Histogram* span_chunks;

  static const QueryMetrics& Get() {
    static const QueryMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Default();
      QueryMetrics m;
      m.queries_total = registry.GetCounter("rstore_query_queries_total");
      m.chunks_fetched_total =
          registry.GetCounter("rstore_query_chunks_fetched_total");
      m.bytes_fetched_total =
          registry.GetCounter("rstore_query_bytes_fetched_total");
      m.simulated_micros_total =
          registry.GetCounter("rstore_query_simulated_micros_total");
      m.missing_chunks_total =
          registry.GetCounter("rstore_query_missing_chunks_total");
      // Chunks per query — the paper's span metric (§2.5).
      m.span_chunks = registry.GetHistogram(
          "rstore_query_span_chunks", Histogram::ExponentialBoundaries(1, 4.0, 8));
      return m;
    }();
    return metrics;
  }
};

std::string MapKey(ChunkId id) {
  std::string key = "m";
  PutVarint64(&key, id);
  return key;
}

bool KeyInRange(const std::string& key, const std::string& lo,
                const std::string& hi) {
  return key >= lo && key <= hi;
}

}  // namespace

QueryProcessor::QueryProcessor(KVStore* kvs, const StoreCatalog* catalog,
                               const VersionedDataset* dataset,
                               LayoutKind layout, const Options& options,
                               ChunkCache* cache, uint64_t cache_owner)
    : kvs_(kvs),
      catalog_(catalog),
      dataset_(dataset),
      layout_(layout),
      options_(options),
      cache_(cache),
      cache_owner_(cache_owner) {}

QueryProcessor::FetchPlan QueryProcessor::PrepareFetch(
    const std::vector<ChunkId>& ids, TraceContext* trace) {
  FetchPlan plan;
  plan.chunks.resize(ids.size());
  // Cache pass: resolve each id against the cache under its *current* map
  // generation, so entries decoded before a map rewrite can never be served.
  if (cache_ != nullptr) {
    ScopedSpan lookup_span(trace, "cache.lookup");
    plan.cache_keys.resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      plan.cache_keys[i] = ChunkCacheKey{cache_owner_, ids[i],
                                         catalog_->ChunkMapGeneration(ids[i])};
      plan.chunks[i] = cache_->Lookup(plan.cache_keys[i]);
      if (plan.chunks[i] == nullptr) plan.miss.push_back(i);
    }
    lookup_span.Annotate("hits",
                         std::to_string(ids.size() - plan.miss.size()));
    lookup_span.Annotate("misses", std::to_string(plan.miss.size()));
  } else {
    plan.miss.resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) plan.miss[i] = i;
  }
  plan.chunk_keys.reserve(plan.miss.size());
  plan.map_keys.reserve(plan.miss.size());
  for (size_t i : plan.miss) {
    plan.chunk_keys.push_back(ChunkKey(ids[i]));
    plan.map_keys.push_back(MapKey(ids[i]));
  }
  return plan;
}

Status QueryProcessor::DecodeAndInsert(
    const std::vector<ChunkId>& ids, FetchPlan* plan,
    const std::map<std::string, std::string>& chunk_values,
    const std::map<std::string, std::string>& map_values,
    const std::vector<KeyReadFailure>& chunk_failures,
    const std::vector<KeyReadFailure>& map_failures, TraceContext* trace,
    QueryDegradation* degradation) {
  const std::vector<size_t>& miss = plan->miss;
  // Index failed keys by name so decode can tell "the backend could not
  // serve it" (degrade) apart from "it does not exist" (corruption). Body
  // and map keys live in different prefixes, so one map fits both.
  std::map<std::string, const Status*> unavailable;
  for (const KeyReadFailure& f : chunk_failures) {
    unavailable[f.key] = &f.status;
  }
  for (const KeyReadFailure& f : map_failures) {
    unavailable[f.key] = &f.status;
  }

  ScopedSpan decode_span(trace, "query.decode");
  decode_span.Annotate("chunks", std::to_string(miss.size()));
  std::vector<Status> statuses(miss.size());
  // Per-miss degradation marks; distinct indices, safe under ParallelFor.
  std::vector<uint8_t> unfetchable(miss.size(), 0);
  std::vector<std::string> unfetchable_reason(miss.size());
  auto degrade_or_corrupt = [&](size_t m, const std::string& key,
                                const std::string& what) {
    auto fit = unavailable.find(key);
    if (fit != unavailable.end()) {
      unfetchable[m] = 1;
      unfetchable_reason[m] = fit->second->ToString();
      return;  // status stays OK; the chunk ref stays null
    }
    statuses[m] = Status::Corruption(what + " " +
                                     std::to_string(ids[miss[m]]) +
                                     " missing from backend");
  };
  auto decode_one = [&](size_t m) {
    size_t i = miss[m];
    auto cit = chunk_values.find(plan->chunk_keys[m]);
    if (cit == chunk_values.end()) {
      degrade_or_corrupt(m, plan->chunk_keys[m], "chunk");
      return;
    }
    auto mit = map_values.find(plan->map_keys[m]);
    if (mit == map_values.end()) {
      degrade_or_corrupt(m, plan->map_keys[m], "chunk map");
      return;
    }
    auto decoded = std::make_shared<Chunk>();
    Slice body(cit->second);
    Status s = Chunk::DecodeFrom(&body, decoded.get());
    if (!s.ok()) {
      statuses[m] = s;
      return;
    }
    Slice map_input(mit->second);
    ChunkMap map;
    s = ChunkMap::DecodeFrom(&map_input, &map);
    if (!s.ok()) {
      statuses[m] = s;
      return;
    }
    statuses[m] = decoded->SetChunkMap(std::move(map));
    if (statuses[m].ok()) plan->chunks[i] = std::move(decoded);
  };
  if (options_.parallel_extraction) {
    ParallelFor(miss.size(), decode_one);
  } else {
    // The paper's evaluated prototype processes chunks sequentially (§5.5).
    for (size_t m = 0; m < miss.size(); ++m) decode_one(m);
  }
  for (const Status& s : statuses) {
    RSTORE_RETURN_IF_ERROR(s);
  }
  if (degradation != nullptr) {
    for (size_t m = 0; m < miss.size(); ++m) {
      if (unfetchable[m] == 0) continue;
      degradation->missing_chunks.push_back(ids[miss[m]]);
      degradation->messages.push_back(std::move(unfetchable_reason[m]));
    }
  }
  if (cache_ != nullptr) {
    // Serial insert after the (possibly parallel) decode: the shards do
    // their own locking, this just keeps insertion order deterministic.
    for (size_t i : miss) {
      if (plan->chunks[i] == nullptr) continue;  // best-effort casualty
      cache_->Insert(plan->cache_keys[i], plan->chunks[i],
                     plan->chunks[i]->ApproximateMemoryBytes());
    }
  }
  return Status::OK();
}

uint64_t QueryProcessor::AccountFetch(const std::vector<ChunkId>& ids,
                                      const FetchPlan& plan, uint64_t bytes,
                                      uint64_t micros, uint64_t queue_us,
                                      uint64_t service_us, uint64_t retry_us,
                                      uint64_t hedge_us, QueryStats* stats) {
  uint64_t n_missing = 0;
  for (const ChunkRef& chunk : plan.chunks) {
    if (chunk == nullptr) ++n_missing;
  }
  // chunks_fetched stays the query's span (paper §2.5) regardless of the
  // cache; bytes/latency only count traffic that reached the backend.
  if (stats != nullptr) {
    stats->chunks_fetched += ids.size();
    stats->bytes_fetched += bytes;
    stats->simulated_micros += micros;
    stats->queue_wait_us += queue_us;
    stats->service_us += service_us;
    stats->retry_penalty_us += retry_us;
    stats->hedge_delta_us += hedge_us;
    if (cache_ != nullptr) {
      stats->cache_hits += ids.size() - plan.miss.size();
      stats->cache_misses += plan.miss.size();
    }
    stats->missing_chunks += n_missing;
  }
  const QueryMetrics& metrics = QueryMetrics::Get();
  metrics.chunks_fetched_total->Increment(ids.size());
  metrics.bytes_fetched_total->Increment(bytes);
  metrics.simulated_micros_total->Increment(micros);
  if (n_missing > 0) metrics.missing_chunks_total->Increment(n_missing);
  metrics.span_chunks->Observe(ids.size());
  return n_missing;
}

Result<std::vector<QueryProcessor::ChunkRef>> QueryProcessor::FetchChunks(
    const std::vector<ChunkId>& ids, QueryStats* stats, TraceContext* trace,
    QueryDegradation* degradation) {
  ScopedSpan fetch_span(trace, "query.fetch_chunks");
  fetch_span.Annotate("chunks", std::to_string(ids.size()));
  FetchPlan plan = PrepareFetch(ids, trace);

  KVStats before = kvs_->stats();
  if (!plan.miss.empty()) {
    std::map<std::string, std::string> chunk_values, map_values;
    std::vector<KeyReadFailure> chunk_failures, map_failures;
    if (degradation != nullptr) {
      // Best-effort: keys on unavailable replicas land in the failure lists
      // instead of failing the batch.
      RSTORE_RETURN_IF_ERROR(
          kvs_->MultiGetPartial(options_.chunk_table, plan.chunk_keys,
                                &chunk_values, &chunk_failures, trace));
      RSTORE_RETURN_IF_ERROR(kvs_->MultiGetPartial(options_.index_table,
                                                   plan.map_keys, &map_values,
                                                   &map_failures, trace));
    } else {
      RSTORE_RETURN_IF_ERROR(kvs_->MultiGet(
          options_.chunk_table, plan.chunk_keys, &chunk_values, trace));
      RSTORE_RETURN_IF_ERROR(kvs_->MultiGet(options_.index_table,
                                            plan.map_keys, &map_values,
                                            trace));
    }
    RSTORE_RETURN_IF_ERROR(DecodeAndInsert(ids, &plan, chunk_values,
                                           map_values, chunk_failures,
                                           map_failures, trace, degradation));
  }
  KVStats after = kvs_->stats();
  uint64_t n_missing = AccountFetch(
      ids, plan, after.bytes_read - before.bytes_read,
      after.simulated_micros - before.simulated_micros,
      after.queue_wait_us - before.queue_wait_us,
      after.service_us - before.service_us,
      after.retry_penalty_us - before.retry_penalty_us,
      after.hedge_delta_us - before.hedge_delta_us, stats);
  if (n_missing > 0) {
    fetch_span.Annotate("missing", std::to_string(n_missing));
  }
  return std::move(plan.chunks);
}

Future<QueryProcessor::AsyncFetchOutcome> QueryProcessor::FetchChunksAsync(
    Executor* executor, std::vector<ChunkId> ids, TraceContext* trace,
    bool best_effort) {
  auto state = std::make_shared<AsyncFetchState>();
  state->executor = executor;
  state->ids = std::move(ids);
  state->trace = trace;
  state->best_effort = best_effort;
  if (trace != nullptr) {
    state->fetch_span = trace->StartSpan("query.fetch_chunks");
    trace->Annotate(state->fetch_span, "chunks",
                    std::to_string(state->ids.size()));
  }
  state->plan = PrepareFetch(state->ids, trace);
  if (state->plan.miss.empty()) {
    // Fully served from cache: nothing reaches the backend, the fetch
    // completes at the current virtual instant with zero charge (exactly
    // the sync path's zero stats delta).
    FinishFetchAsync(state, AsyncMultiGetResult{});
    return state->promise.future();
  }
  // Body batch first, map batch chained at its simulated completion
  // instant — the sync path's sequencing, reproduced on the virtual clock
  // (and required to keep this trace's spans LIFO).
  kvs_->MultiGetAsync(executor, options_.chunk_table, state->plan.chunk_keys,
                      best_effort, trace)
      .OnReady([this, state](const AsyncMultiGetResult& chunk_result) {
        if (!chunk_result.status.ok()) {
          AbortFetchAsync(state, chunk_result.status);
          return;
        }
        state->chunk_result = chunk_result;
        kvs_->MultiGetAsync(state->executor, options_.index_table,
                            state->plan.map_keys, state->best_effort,
                            state->trace)
            .OnReady([this, state](const AsyncMultiGetResult& map_result) {
              if (!map_result.status.ok()) {
                AbortFetchAsync(state, map_result.status);
                return;
              }
              FinishFetchAsync(state, map_result);
            });
      });
  return state->promise.future();
}

void QueryProcessor::FinishFetchAsync(const FetchStatePtr& state,
                                      const AsyncMultiGetResult& map_result) {
  if (!state->plan.miss.empty()) {
    Status s = DecodeAndInsert(
        state->ids, &state->plan, state->chunk_result.values,
        map_result.values, state->chunk_result.failures, map_result.failures,
        state->trace, state->best_effort ? &state->out.degradation : nullptr);
    if (!s.ok()) {
      AbortFetchAsync(state, s);
      return;
    }
  }
  const uint64_t bytes = state->chunk_result.bytes_read + map_result.bytes_read;
  const uint64_t micros =
      state->chunk_result.charged_micros + map_result.charged_micros;
  uint64_t n_missing = AccountFetch(
      state->ids, state->plan, bytes, micros,
      state->chunk_result.queue_wait_us + map_result.queue_wait_us,
      state->chunk_result.service_us + map_result.service_us,
      state->chunk_result.retry_penalty_us + map_result.retry_penalty_us,
      state->chunk_result.hedge_delta_us + map_result.hedge_delta_us,
      &state->out.stats);
  if (state->trace != nullptr) {
    if (n_missing > 0) {
      state->trace->Annotate(state->fetch_span, "missing",
                             std::to_string(n_missing));
    }
    state->trace->EndSpan(state->fetch_span);
  }
  state->out.chunks = std::move(state->plan.chunks);
  state->promise.Set(std::move(state->out));
}

void QueryProcessor::AbortFetchAsync(const FetchStatePtr& state,
                                     const Status& error) {
  if (state->trace != nullptr) state->trace->EndSpan(state->fetch_span);
  state->out.status = error;
  state->promise.Set(std::move(state->out));
}

Result<std::vector<Record>> QueryProcessor::ExtractVersionRecords(
    const std::vector<ChunkRef>& chunks, VersionId version, bool use_range,
    const std::string& key_lo, const std::string& key_hi) const {
  std::vector<std::vector<Record>> per_chunk(chunks.size());
  std::vector<Status> statuses(chunks.size());
  auto extract_one = [&](size_t c) {
    if (chunks[c] == nullptr) return;  // best-effort fetch casualty
    const Chunk& chunk = *chunks[c];
    std::vector<uint32_t> indices = chunk.chunk_map().RecordsOf(version);
    if (use_range) {
      std::vector<uint32_t> filtered;
      for (uint32_t idx : indices) {
        if (KeyInRange(chunk.records()[idx].key, key_lo, key_hi)) {
          filtered.push_back(idx);
        }
      }
      indices = std::move(filtered);
    }
    if (indices.empty()) return;  // lossy-projection artifact
    auto extracted = chunk.ExtractRecords(indices);
    if (!extracted.ok()) {
      statuses[c] = extracted.status();
      return;
    }
    per_chunk[c].reserve(extracted->size());
    for (auto& [ck, payload] : extracted.value()) {
      per_chunk[c].push_back(Record{ck, std::move(payload)});
    }
  };
  if (options_.parallel_extraction) {
    ParallelFor(chunks.size(), extract_one);
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) extract_one(c);
  }
  std::vector<Record> out;
  for (size_t c = 0; c < chunks.size(); ++c) {
    RSTORE_RETURN_IF_ERROR(statuses[c]);
    for (Record& r : per_chunk[c]) out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.key < b.key;
  });
  return out;
}

std::vector<ChunkId> QueryProcessor::DeltaChainIds(VersionId version) const {
  // DELTA layout: every delta object on root->version must be retrieved.
  // (Partial retrieval still reconstructs the full version first, then
  // filters — the paper's worst case for this baseline.)
  std::vector<ChunkId> ids;
  for (VersionId step : dataset_->graph.PathFromRoot(version)) {
    for (ChunkId id : catalog_->ChunksOriginatedAt(step)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Result<std::vector<Record>> QueryProcessor::ReplayDeltaChain(
    const std::vector<ChunkRef>& chunks, VersionId version, bool use_range,
    const std::string& key_lo, const std::string& key_hi) const {
  // The chain must be replayed in full: every record of every delta object
  // is decompressed (later deltas may be record-level-encoded against
  // earlier records), then membership — replayed on the application server
  // from the in-memory deltas — selects the live ones. This whole-chain
  // decompression is precisely the DELTA baseline's cost profile.
  std::unordered_map<CompositeKey, std::string, CompositeKeyHash> replayed;
  SubChunk::PayloadResolver resolver =
      [&replayed](const CompositeKey& ck) -> Result<std::string> {
    auto it = replayed.find(ck);
    if (it == replayed.end()) {
      return Status::Corruption("delta base record " + ck.ToString() +
                                " not yet replayed");
    }
    return it->second;
  };
  for (const ChunkRef& chunk_ref : chunks) {
    const Chunk& chunk = *chunk_ref;
    // Chunk ids ascend with origin version, so bases precede dependents.
    std::vector<uint32_t> all(chunk.record_count());
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    auto extracted = chunk.ExtractRecords(all, resolver);
    if (!extracted.ok()) return extracted.status();
    for (auto& [ck, payload] : extracted.value()) {
      replayed[ck] = std::move(payload);
    }
  }
  VersionMembership members = dataset_->MaterializeVersion(version);
  std::vector<Record> out;
  for (const CompositeKey& ck : members) {
    if (use_range && !KeyInRange(ck.key, key_lo, key_hi)) continue;
    auto it = replayed.find(ck);
    if (it == replayed.end()) {
      return Status::Corruption("record " + ck.ToString() +
                                " missing from replayed chain");
    }
    out.push_back(Record{ck, it->second});
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.key < b.key;
  });
  return out;
}

Result<std::vector<Record>> QueryProcessor::GetVersionDeltaChain(
    VersionId version, bool use_range, const std::string& key_lo,
    const std::string& key_hi, QueryStats* stats, TraceContext* trace) {
  auto chunks = FetchChunks(DeltaChainIds(version), stats, trace);
  if (!chunks.ok()) return chunks.status();
  return ReplayDeltaChain(chunks.value(), version, use_range, key_lo, key_hi);
}

Result<std::vector<Record>> QueryProcessor::GetVersion(
    VersionId version, QueryStats* stats, TraceContext* trace,
    QueryDegradation* degradation) {
  if (version >= dataset_->graph.size()) {
    return Status::InvalidArgument("unknown version");
  }
  ScopedSpan span(trace, "query.get_version");
  span.Annotate("version", std::to_string(version));
  QueryMetrics::Get().queries_total->Increment();
  // Best-effort only when the options ask for it; the caller's report
  // object is optional (the missing_chunks stat still counts casualties).
  QueryDegradation local_degradation;
  QueryDegradation* effective =
      options_.read_mode == ReadMode::kBestEffort
          ? (degradation != nullptr ? degradation : &local_degradation)
          : nullptr;
  switch (layout_) {
    case LayoutKind::kChunked: {
      auto chunks = FetchChunks(catalog_->ChunksOfVersion(version), stats,
                                trace, effective);
      if (!chunks.ok()) return chunks.status();
      return ExtractVersionRecords(chunks.value(), version,
                                   /*use_range=*/false, "", "");
    }
    case LayoutKind::kDeltaChain:
      // A delta chain with a hole cannot be replayed: this layout is always
      // strict (documented in DESIGN.md "Fault tolerance").
      return GetVersionDeltaChain(version, /*use_range=*/false, "", "",
                                  stats, trace);
    case LayoutKind::kSubChunkPerKey: {
      // No version->chunk index: every chunk must be retrieved (paper §2.2).
      auto chunks = FetchChunks(catalog_->AllChunks(), stats, trace,
                                effective);
      if (!chunks.ok()) return chunks.status();
      return ExtractVersionRecords(chunks.value(), version,
                                   /*use_range=*/false, "", "");
    }
  }
  return Status::InvalidArgument("bad layout");
}

Result<std::vector<Record>> QueryProcessor::GetRange(
    VersionId version, const std::string& key_lo, const std::string& key_hi,
    QueryStats* stats, TraceContext* trace, QueryDegradation* degradation) {
  if (version >= dataset_->graph.size()) {
    return Status::InvalidArgument("unknown version");
  }
  if (key_lo > key_hi) {
    return Status::InvalidArgument("empty key range");
  }
  ScopedSpan span(trace, "query.get_range");
  span.Annotate("version", std::to_string(version));
  QueryMetrics::Get().queries_total->Increment();
  QueryDegradation local_degradation;
  QueryDegradation* effective =
      options_.read_mode == ReadMode::kBestEffort
          ? (degradation != nullptr ? degradation : &local_degradation)
          : nullptr;
  switch (layout_) {
    case LayoutKind::kChunked:
    case LayoutKind::kSubChunkPerKey: {
      auto chunks = FetchChunks(RangeChunkIds(version, key_lo, key_hi), stats,
                                trace, effective);
      if (!chunks.ok()) return chunks.status();
      return ExtractVersionRecords(chunks.value(), version,
                                   /*use_range=*/true, key_lo, key_hi);
    }
    case LayoutKind::kDeltaChain:
      // Always strict: a delta chain with a hole cannot be replayed.
      return GetVersionDeltaChain(version, /*use_range=*/true, key_lo,
                                  key_hi, stats, trace);
  }
  return Status::InvalidArgument("bad layout");
}

std::vector<ChunkId> QueryProcessor::RangeChunkIds(
    VersionId version, const std::string& key_lo,
    const std::string& key_hi) const {
  std::vector<ChunkId> ids;
  if (layout_ == LayoutKind::kChunked) {
    // Index-ANDing: chunks of the version INTERSECT chunks holding any key
    // in the range. The key->chunks projection is keyed by exact key, so
    // candidates come from scanning each version chunk's record list once.
    for (ChunkId id : catalog_->ChunksOfVersion(version)) {
      const std::vector<CompositeKey>* records = catalog_->RecordsOfChunk(id);
      if (records == nullptr) continue;
      for (const CompositeKey& ck : *records) {
        if (KeyInRange(ck.key, key_lo, key_hi)) {
          ids.push_back(id);
          break;
        }
      }
    }
  } else {
    // One chunk per key: fetch the chunks whose key falls in the range.
    for (ChunkId id : catalog_->AllChunks()) {
      const std::vector<CompositeKey>* records = catalog_->RecordsOfChunk(id);
      if (records != nullptr && !records->empty() &&
          KeyInRange((*records)[0].key, key_lo, key_hi)) {
        ids.push_back(id);
      }
    }
  }
  return ids;
}

Result<std::vector<Record>> QueryProcessor::GetHistory(const std::string& key,
                                                       QueryStats* stats,
                                                       TraceContext* trace) {
  ScopedSpan span(trace, "query.get_history");
  span.Annotate("key", key);
  QueryMetrics::Get().queries_total->Increment();
  std::vector<ChunkId> ids;
  switch (layout_) {
    case LayoutKind::kChunked:
    case LayoutKind::kSubChunkPerKey:
      ids = catalog_->ChunksOfKey(key);
      break;
    case LayoutKind::kDeltaChain:
      // "For DELTA, we need to reconstruct all the versions and then filter
      // out the required records which renders execution of Q3 impractical"
      // (§5.4): every chunk must come back.
      ids = catalog_->AllChunks();
      break;
  }
  auto chunks = FetchChunks(ids, stats, trace);
  if (!chunks.ok()) return chunks.status();
  return HistoryFromChunks(chunks.value(), key);
}

Result<std::vector<Record>> QueryProcessor::HistoryFromChunks(
    const std::vector<ChunkRef>& chunks, const std::string& key) const {
  std::vector<Record> out;
  if (layout_ == LayoutKind::kDeltaChain) {
    // Everything was fetched; replay it all (record-level deltas may chain
    // across versions) and filter by key.
    std::unordered_map<CompositeKey, std::string, CompositeKeyHash> replayed;
    SubChunk::PayloadResolver resolver =
        [&replayed](const CompositeKey& ck) -> Result<std::string> {
      auto it = replayed.find(ck);
      if (it == replayed.end()) {
        return Status::Corruption("delta base record " + ck.ToString() +
                                  " not yet replayed");
      }
      return it->second;
    };
    for (const ChunkRef& chunk_ref : chunks) {
      const Chunk& chunk = *chunk_ref;
      std::vector<uint32_t> all(chunk.record_count());
      for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
      auto extracted = chunk.ExtractRecords(all, resolver);
      if (!extracted.ok()) return extracted.status();
      for (auto& [ck, payload] : extracted.value()) {
        replayed[ck] = std::move(payload);
      }
    }
    for (auto& [ck, payload] : replayed) {
      if (ck.key == key) out.push_back(Record{ck, std::move(payload)});
    }
  } else {
    for (const ChunkRef& chunk_ref : chunks) {
      const Chunk& chunk = *chunk_ref;
      std::vector<uint32_t> wanted;
      for (uint32_t i = 0; i < chunk.records().size(); ++i) {
        if (chunk.records()[i].key == key) wanted.push_back(i);
      }
      if (wanted.empty()) continue;
      auto extracted = chunk.ExtractRecords(wanted);
      if (!extracted.ok()) return extracted.status();
      for (auto& [ck, payload] : extracted.value()) {
        out.push_back(Record{ck, std::move(payload)});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.key.version < b.key.version;
  });
  return out;
}

Result<Record> QueryProcessor::GetRecord(const std::string& key,
                                         VersionId version,
                                         QueryStats* stats,
                                         TraceContext* trace) {
  if (version >= dataset_->graph.size()) {
    return Status::InvalidArgument("unknown version");
  }
  ScopedSpan span(trace, "query.get_record");
  span.Annotate("key", key);
  span.Annotate("version", std::to_string(version));
  QueryMetrics::Get().queries_total->Increment();
  std::vector<ChunkId> ids;
  switch (layout_) {
    case LayoutKind::kChunked: {
      // Index-ANDing of the two projections (paper §2.4).
      std::vector<ChunkId> by_version = catalog_->ChunksOfVersion(version);
      std::vector<ChunkId> by_key = catalog_->ChunksOfKey(key);
      std::set_intersection(by_version.begin(), by_version.end(),
                            by_key.begin(), by_key.end(),
                            std::back_inserter(ids));
      break;
    }
    case LayoutKind::kDeltaChain: {
      auto records = GetVersionDeltaChain(version, /*use_range=*/true, key,
                                          key, stats, trace);
      if (!records.ok()) return records.status();
      if (records->empty()) {
        return Status::NotFound("no record " + key + " in version " +
                                std::to_string(version));
      }
      return std::move(records->front());
    }
    case LayoutKind::kSubChunkPerKey:
      ids = catalog_->ChunksOfKey(key);
      break;
  }
  auto chunks = FetchChunks(ids, stats, trace);
  if (!chunks.ok()) return chunks.status();
  return RecordFromChunks(chunks.value(), key, version);
}

Result<Record> QueryProcessor::RecordFromChunks(
    const std::vector<ChunkRef>& chunks, const std::string& key,
    VersionId version) const {
  for (const ChunkRef& chunk_ref : chunks) {
    const Chunk& chunk = *chunk_ref;
    for (uint32_t idx : chunk.chunk_map().RecordsOf(version)) {
      if (chunk.records()[idx].key == key) {
        auto payload = chunk.ExtractPayload(chunk.records()[idx]);
        if (!payload.ok()) return payload.status();
        return Record{chunk.records()[idx], std::move(payload.value())};
      }
    }
  }
  return Status::NotFound("no record " + key + " in version " +
                          std::to_string(version));
}

// -- Asynchronous twins. Each runs the sync method's prologue inline
//    (validation, span, planning), submits the fetch, and runs the sync
//    epilogue in the continuation at the query's simulated completion
//    instant — so results are byte-identical to the sync path by
//    construction, and only the fetch's scheduling differs.

Future<AsyncQueryResult> QueryProcessor::GetVersionAsync(Executor* executor,
                                                         VersionId version,
                                                         TraceContext* trace) {
  if (version >= dataset_->graph.size()) {
    AsyncQueryResult result;
    result.status = Status::InvalidArgument("unknown version");
    return MakeReadyFuture(std::move(result));
  }
  const uint32_t span = trace != nullptr ? trace->StartSpan("query.get_version")
                                         : TraceSpan::kNoParent;
  if (trace != nullptr) {
    trace->Annotate(span, "version", std::to_string(version));
  }
  QueryMetrics::Get().queries_total->Increment();
  // A delta chain with a hole cannot be replayed: always strict.
  const bool best_effort = options_.read_mode == ReadMode::kBestEffort &&
                           layout_ != LayoutKind::kDeltaChain;
  std::vector<ChunkId> ids;
  switch (layout_) {
    case LayoutKind::kChunked:
      ids = catalog_->ChunksOfVersion(version);
      break;
    case LayoutKind::kDeltaChain:
      ids = DeltaChainIds(version);
      break;
    case LayoutKind::kSubChunkPerKey:
      // No version->chunk index: every chunk must be retrieved (paper §2.2).
      ids = catalog_->AllChunks();
      break;
  }
  Promise<AsyncQueryResult> promise;
  FetchChunksAsync(executor, std::move(ids), trace, best_effort)
      .OnReady([this, promise, version, trace,
                span](const AsyncFetchOutcome& fetch) {
        AsyncQueryResult result;
        result.stats = fetch.stats;
        result.degradation = fetch.degradation;
        if (!fetch.status.ok()) {
          result.status = fetch.status;
        } else {
          auto records =
              layout_ == LayoutKind::kDeltaChain
                  ? ReplayDeltaChain(fetch.chunks, version,
                                     /*use_range=*/false, "", "")
                  : ExtractVersionRecords(fetch.chunks, version,
                                          /*use_range=*/false, "", "");
          if (records.ok()) {
            result.records = std::move(records.value());
          } else {
            result.status = records.status();
          }
        }
        if (trace != nullptr) trace->EndSpan(span);
        promise.Set(std::move(result));
      });
  return promise.future();
}

Future<AsyncQueryResult> QueryProcessor::GetRangeAsync(
    Executor* executor, VersionId version, const std::string& key_lo,
    const std::string& key_hi, TraceContext* trace) {
  if (version >= dataset_->graph.size()) {
    AsyncQueryResult result;
    result.status = Status::InvalidArgument("unknown version");
    return MakeReadyFuture(std::move(result));
  }
  if (key_lo > key_hi) {
    AsyncQueryResult result;
    result.status = Status::InvalidArgument("empty key range");
    return MakeReadyFuture(std::move(result));
  }
  const uint32_t span = trace != nullptr ? trace->StartSpan("query.get_range")
                                         : TraceSpan::kNoParent;
  if (trace != nullptr) {
    trace->Annotate(span, "version", std::to_string(version));
  }
  QueryMetrics::Get().queries_total->Increment();
  const bool best_effort = options_.read_mode == ReadMode::kBestEffort &&
                           layout_ != LayoutKind::kDeltaChain;
  std::vector<ChunkId> ids = layout_ == LayoutKind::kDeltaChain
                                 ? DeltaChainIds(version)
                                 : RangeChunkIds(version, key_lo, key_hi);
  Promise<AsyncQueryResult> promise;
  FetchChunksAsync(executor, std::move(ids), trace, best_effort)
      .OnReady([this, promise, version, key_lo, key_hi, trace,
                span](const AsyncFetchOutcome& fetch) {
        AsyncQueryResult result;
        result.stats = fetch.stats;
        result.degradation = fetch.degradation;
        if (!fetch.status.ok()) {
          result.status = fetch.status;
        } else {
          auto records =
              layout_ == LayoutKind::kDeltaChain
                  ? ReplayDeltaChain(fetch.chunks, version, /*use_range=*/true,
                                     key_lo, key_hi)
                  : ExtractVersionRecords(fetch.chunks, version,
                                          /*use_range=*/true, key_lo, key_hi);
          if (records.ok()) {
            result.records = std::move(records.value());
          } else {
            result.status = records.status();
          }
        }
        if (trace != nullptr) trace->EndSpan(span);
        promise.Set(std::move(result));
      });
  return promise.future();
}

Future<AsyncQueryResult> QueryProcessor::GetHistoryAsync(Executor* executor,
                                                         const std::string& key,
                                                         TraceContext* trace) {
  const uint32_t span = trace != nullptr
                            ? trace->StartSpan("query.get_history")
                            : TraceSpan::kNoParent;
  if (trace != nullptr) trace->Annotate(span, "key", key);
  QueryMetrics::Get().queries_total->Increment();
  std::vector<ChunkId> ids = layout_ == LayoutKind::kDeltaChain
                                 ? catalog_->AllChunks()
                                 : catalog_->ChunksOfKey(key);
  Promise<AsyncQueryResult> promise;
  FetchChunksAsync(executor, std::move(ids), trace, /*best_effort=*/false)
      .OnReady([this, promise, key, trace,
                span](const AsyncFetchOutcome& fetch) {
        AsyncQueryResult result;
        result.stats = fetch.stats;
        if (!fetch.status.ok()) {
          result.status = fetch.status;
        } else {
          auto records = HistoryFromChunks(fetch.chunks, key);
          if (records.ok()) {
            result.records = std::move(records.value());
          } else {
            result.status = records.status();
          }
        }
        if (trace != nullptr) trace->EndSpan(span);
        promise.Set(std::move(result));
      });
  return promise.future();
}

Future<AsyncRecordResult> QueryProcessor::GetRecordAsync(
    Executor* executor, const std::string& key, VersionId version,
    TraceContext* trace) {
  if (version >= dataset_->graph.size()) {
    AsyncRecordResult result;
    result.status = Status::InvalidArgument("unknown version");
    return MakeReadyFuture(std::move(result));
  }
  const uint32_t span = trace != nullptr ? trace->StartSpan("query.get_record")
                                         : TraceSpan::kNoParent;
  if (trace != nullptr) {
    trace->Annotate(span, "key", key);
    trace->Annotate(span, "version", std::to_string(version));
  }
  QueryMetrics::Get().queries_total->Increment();
  std::vector<ChunkId> ids;
  switch (layout_) {
    case LayoutKind::kChunked: {
      // Index-ANDing of the two projections (paper §2.4).
      std::vector<ChunkId> by_version = catalog_->ChunksOfVersion(version);
      std::vector<ChunkId> by_key = catalog_->ChunksOfKey(key);
      std::set_intersection(by_version.begin(), by_version.end(),
                            by_key.begin(), by_key.end(),
                            std::back_inserter(ids));
      break;
    }
    case LayoutKind::kDeltaChain:
      ids = DeltaChainIds(version);
      break;
    case LayoutKind::kSubChunkPerKey:
      ids = catalog_->ChunksOfKey(key);
      break;
  }
  Promise<AsyncRecordResult> promise;
  FetchChunksAsync(executor, std::move(ids), trace, /*best_effort=*/false)
      .OnReady([this, promise, key, version, trace,
                span](const AsyncFetchOutcome& fetch) {
        AsyncRecordResult result;
        result.stats = fetch.stats;
        if (!fetch.status.ok()) {
          result.status = fetch.status;
        } else if (layout_ == LayoutKind::kDeltaChain) {
          auto records = ReplayDeltaChain(fetch.chunks, version,
                                          /*use_range=*/true, key, key);
          if (!records.ok()) {
            result.status = records.status();
          } else if (records->empty()) {
            result.status = Status::NotFound("no record " + key +
                                             " in version " +
                                             std::to_string(version));
          } else {
            result.record = std::move(records->front());
          }
        } else {
          auto record = RecordFromChunks(fetch.chunks, key, version);
          if (record.ok()) {
            result.record = std::move(record.value());
          } else {
            result.status = record.status();
          }
        }
        if (trace != nullptr) trace->EndSpan(span);
        promise.Set(std::move(result));
      });
  return promise.future();
}

}  // namespace rstore
