#include "core/ingest_pipeline.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>

#include "common/executor.h"
#include "common/hash.h"
#include "common/sync.h"

namespace rstore {

IngestShardPlan ShardedPartitioner::Plan(
    const std::vector<uint64_t>& chunk_bytes) const {
  IngestShardPlan plan;
  const size_t n = chunk_bytes.size();
  const uint32_t shards =
      static_cast<uint32_t>(std::min<size_t>(num_shards_, std::max<size_t>(n, 1)));
  plan.shards.resize(shards);
  if (n == 0) return plan;
  if (mode_ == Options::IngestShardMode::kHash) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t shard =
          static_cast<uint32_t>(Mix64(seed_ ^ (i + 1)) % shards);
      plan.shards[shard].push_back(static_cast<uint32_t>(i));
    }
    return plan;
  }
  // Ordered: contiguous runs, cut so cumulative bytes track the even split.
  // Size-zero inputs fall back to an even count split.
  uint64_t total = 0;
  for (uint64_t b : chunk_bytes) total += b;
  uint64_t cum = 0;
  uint32_t shard = 0;
  for (size_t i = 0; i < n; ++i) {
    plan.shards[shard].push_back(static_cast<uint32_t>(i));
    cum += chunk_bytes[i];
    const size_t remaining_chunks = n - i - 1;
    const uint32_t remaining_shards = shards - shard - 1;
    if (shard + 1 < shards &&
        (total == 0
             ? (i + 1) * shards >= (shard + 1) * n
             : cum * shards >= static_cast<uint64_t>(shard + 1) * total) &&
        remaining_chunks >= remaining_shards) {
      ++shard;
    }
  }
  return plan;
}

Status MultiChunkWriter::Write(const std::vector<const EncodedChunk*>& chunks) {
  if (chunks.empty()) return Status::OK();
  std::vector<std::pair<std::string, std::string>> bodies;
  std::vector<std::pair<std::string, std::string>> maps;
  bodies.reserve(chunks.size());
  maps.reserve(chunks.size());
  for (const EncodedChunk* chunk : chunks) {
    bodies.emplace_back(ChunkKey(chunk->id), chunk->body);
    maps.emplace_back(ChunkMapKey(chunk->id), chunk->map);
  }
  RSTORE_RETURN_IF_ERROR(backend_->WriteBatch(chunk_table_, bodies));
  RSTORE_RETURN_IF_ERROR(backend_->WriteBatch(index_table_, maps));
  for (const EncodedChunk* chunk : chunks) {
    ++chunks_written_;
    body_bytes_ += chunk->body.size();
    uncompressed_bytes_ += chunk->uncompressed_bytes;
  }
  return Status::OK();
}

namespace {

Status RunSerial(uint32_t num_shards, const IngestStageFn& encode,
                 const IngestStageFn& write) {
  for (uint32_t s = 0; s < num_shards; ++s) {
    RSTORE_RETURN_IF_ERROR(encode(s));
    RSTORE_RETURN_IF_ERROR(write(s));
  }
  return Status::OK();
}

/// Simulation mode: every stage becomes an executor task, so the interleave
/// is the executor's deterministic schedule (single OS thread). Encodes of
/// up to `depth` shards are outstanding ahead of the write cursor; each
/// completed encode drains the in-order write queue and refills the window.
Status RunOnExecutor(uint32_t num_shards, uint32_t depth, Executor* executor,
                     const IngestStageFn& encode, const IngestStageFn& write) {
  struct State {
    uint32_t next_encode = 0;
    uint32_t next_write = 0;
    std::vector<bool> encoded;
    Status error = Status::OK();
  };
  auto state = std::make_shared<State>();
  state->encoded.assign(num_shards, false);

  // Owns the recursive task lambda so continuations can re-post themselves.
  auto run_encode = std::make_shared<std::function<void(uint32_t)>>();
  *run_encode = [state, run_encode, executor, num_shards, &encode,
                 &write](uint32_t s) {
    if (!state->error.ok()) return;
    Status st = encode(s);
    if (!st.ok()) {
      state->error = st;
      return;
    }
    state->encoded[s] = true;
    while (state->next_write < num_shards &&
           state->encoded[state->next_write] && state->error.ok()) {
      const uint32_t w = state->next_write;
      st = write(w);
      if (!st.ok()) {
        state->error = st;
        return;
      }
      ++state->next_write;
      if (state->next_encode < num_shards) {
        const uint32_t e = state->next_encode++;
        executor->Post([run_encode, e] { (*run_encode)(e); });
      }
    }
  };
  const uint32_t window = std::min(std::max(depth, 1u), num_shards);
  state->next_encode = window;
  for (uint32_t s = 0; s < window; ++s) {
    executor->Post([run_encode, s] { (*run_encode)(s); });
  }
  executor->RunUntilIdle();
  // The task lambda captures its own shared_ptr so re-posts keep it alive;
  // break the cycle once the pipeline has drained.
  *run_encode = nullptr;
  return state->error;
}

/// Threaded mode: encoder workers claim shards within the depth window and
/// fill their slots; the calling thread is the single writer, consuming
/// shards in ascending order. Stage callbacks always run with the pipeline
/// lock released (the writer may block on the backend, encoders on the
/// compressor, neither under mu_).
class ThreadedPipeline {
 public:
  ThreadedPipeline(uint32_t num_shards, uint32_t depth)
      : num_shards_(num_shards), depth_(std::max(depth, 1u)) {
    encoded_.assign(num_shards, false);
  }

  Status Run(uint32_t max_threads, const IngestStageFn& encode,
             const IngestStageFn& write) {
    unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
    unsigned threads = max_threads == 0 ? hardware : max_threads;
    threads = static_cast<unsigned>(
        std::min<size_t>({threads, num_shards_, depth_}));
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([this, &encode] { EncodeLoop(encode); });
    }
    for (uint32_t s = 0; s < num_shards_; ++s) {
      bool abort = false;
      {
        MutexLock lock(mu_);
        while (!failed_ && !encoded_[s]) cv_.Wait(mu_);
        abort = failed_;
      }
      if (abort) break;
      Status st = write(s);
      MutexLock lock(mu_);
      if (!st.ok()) {
        Fail(st);
        break;
      }
      writer_cursor_ = s + 1;
      cv_.NotifyAll();
    }
    {
      // Unblock any encoder still waiting for window space.
      MutexLock lock(mu_);
      done_ = true;
      cv_.NotifyAll();
    }
    for (std::thread& worker : workers) worker.join();
    MutexLock lock(mu_);
    if (exception_) std::rethrow_exception(exception_);
    return error_;
  }

 private:
  void EncodeLoop(const IngestStageFn& encode) {
    while (true) {
      uint32_t s;
      {
        MutexLock lock(mu_);
        while (!failed_ && !done_ && next_encode_ < num_shards_ &&
               next_encode_ >= writer_cursor_ + depth_) {
          cv_.Wait(mu_);
        }
        if (failed_ || done_ || next_encode_ >= num_shards_) return;
        s = next_encode_++;
      }
      Status st = Status::OK();
      try {
        st = encode(s);
      } catch (...) {
        MutexLock lock(mu_);
        if (!exception_) exception_ = std::current_exception();
        Fail(Status::InvalidArgument("encoder threw"));
        return;
      }
      MutexLock lock(mu_);
      if (!st.ok()) {
        Fail(st);
        return;
      }
      encoded_[s] = true;
      cv_.NotifyAll();
    }
  }

  void Fail(Status st) RSTORE_REQUIRES(mu_) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(st);
    }
    cv_.NotifyAll();
  }

  const uint32_t num_shards_;
  const uint32_t depth_;
  Mutex mu_{kLockRankIngestPipeline, "IngestPipeline::mu_"};
  CondVar cv_;
  uint32_t next_encode_ RSTORE_GUARDED_BY(mu_) = 0;
  /// Shards [0, writer_cursor_) are written; encoders may claim shards up to
  /// writer_cursor_ + depth_ (the in-flight window).
  uint32_t writer_cursor_ RSTORE_GUARDED_BY(mu_) = 0;
  std::vector<bool> encoded_ RSTORE_GUARDED_BY(mu_);
  bool failed_ RSTORE_GUARDED_BY(mu_) = false;
  bool done_ RSTORE_GUARDED_BY(mu_) = false;
  Status error_ RSTORE_GUARDED_BY(mu_) = Status::OK();
  std::exception_ptr exception_ RSTORE_GUARDED_BY(mu_);
};

}  // namespace

uint32_t ResolveIngestShards(const Options& options) {
  if (options.ingest_shards != 0) return options.ingest_shards;
  return std::max(1u, std::thread::hardware_concurrency());
}

Status RunIngestPipeline(const IngestPipelineOptions& options,
                         const IngestStageFn& encode,
                         const IngestStageFn& write) {
  const uint32_t n = options.num_shards;
  if (n == 0) return Status::OK();
  if (options.executor != nullptr) {
    return RunOnExecutor(n, options.pipeline_depth, options.executor, encode,
                         write);
  }
  unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  unsigned threads =
      options.max_threads == 0 ? hardware : options.max_threads;
  if (n == 1 || threads <= 1) return RunSerial(n, encode, write);
  ThreadedPipeline pipeline(n, options.pipeline_depth);
  return pipeline.Run(options.max_threads, encode, write);
}

}  // namespace rstore
