#ifndef RSTORE_CORE_BASELINE_PARTITIONER_H_
#define RSTORE_CORE_BASELINE_PARTITIONER_H_

#include "core/partitioner.h"

namespace rstore {

/// DELTA baseline (paper §2.2): each version's ∆⁺ records are stored as
/// their own chunk(s), never packed across versions — the git-style layout.
/// Reconstruction of V replays the entire root->V chain (LayoutKind::
/// kDeltaChain), which is what makes key-centric and partial queries
/// "abysmal" in the paper's analysis.
class DeltaBaselinePartitioner : public Partitioner {
 public:
  const char* name() const override { return "DELTA"; }
  Result<Partitioning> Partition(const PartitionInput& input) override;
};

/// SUBCHUNK baseline (paper §2.2): all records sharing a primary key are
/// grouped into a single chunk keyed by that primary key, regardless of
/// chunk capacity. Best storage cost and record-evolution performance, but
/// full-version retrieval must fetch every chunk (LayoutKind::
/// kSubChunkPerKey).
class SubChunkBaselinePartitioner : public Partitioner {
 public:
  const char* name() const override { return "SUBCHUNK"; }
  Result<Partitioning> Partition(const PartitionInput& input) override;
};

/// Single-address-space baseline (paper §2.2): every record is stored
/// individually under its composite key — i.e. a chunked layout where every
/// chunk holds exactly one item.
class SingleAddressPartitioner : public Partitioner {
 public:
  const char* name() const override { return "SINGLE-ADDRESS"; }
  Result<Partitioning> Partition(const PartitionInput& input) override;
};

}  // namespace rstore

#endif  // RSTORE_CORE_BASELINE_PARTITIONER_H_
