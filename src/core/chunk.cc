#include "core/chunk.h"

#include <map>

#include "common/coding.h"
#include "common/logging.h"

namespace rstore {

std::string ChunkKey(ChunkId id) {
  std::string key = "c";
  PutVarint64(&key, id);
  return key;
}

std::string ChunkMapKey(ChunkId id) {
  std::string key = "m";
  PutVarint64(&key, id);
  return key;
}

uint32_t Chunk::AddSubChunk(SubChunk sub_chunk) {
  uint32_t first_index = record_count();
  uint32_t sub_index = static_cast<uint32_t>(sub_chunks_.size());
  payload_bytes_ += sub_chunk.serialized_size();
  for (const CompositeKey& ck : sub_chunk.keys()) {
    records_.push_back(ck);
    sub_chunk_of_record_.push_back(sub_index);
  }
  sub_chunks_.push_back(std::move(sub_chunk));
  return first_index;
}

uint64_t Chunk::ApproximateMemoryBytes() const {
  uint64_t bytes = sizeof(Chunk);
  for (const SubChunk& sc : sub_chunks_) bytes += sc.ApproximateMemoryBytes();
  for (const CompositeKey& ck : records_) {
    bytes += sizeof(CompositeKey) + ck.key.size();
  }
  bytes += sub_chunk_of_record_.size() * sizeof(uint32_t);
  bytes += map_.ApproximateMemoryBytes();
  return bytes;
}

Result<std::string> Chunk::ExtractPayload(
    const CompositeKey& ck, const SubChunk::PayloadResolver& resolver) const {
  for (uint32_t i = 0; i < records_.size(); ++i) {
    if (records_[i] == ck) {
      return sub_chunks_[sub_chunk_of_record_[i]].ExtractPayload(ck,
                                                                 resolver);
    }
  }
  return Status::NotFound("record " + ck.ToString() + " not in chunk");
}

Result<std::vector<std::pair<CompositeKey, std::string>>>
Chunk::ExtractRecords(const std::vector<uint32_t>& record_indices,
                      const SubChunk::PayloadResolver& resolver) const {
  // Group requested records by owning sub-chunk so each sub-chunk is
  // decompressed exactly once.
  std::map<uint32_t, std::vector<uint32_t>> by_sub_chunk;
  for (uint32_t idx : record_indices) {
    if (idx >= records_.size()) {
      return Status::InvalidArgument("record index out of range");
    }
    by_sub_chunk[sub_chunk_of_record_[idx]].push_back(idx);
  }
  std::vector<std::pair<CompositeKey, std::string>> out;
  out.reserve(record_indices.size());
  for (const auto& [sub_index, indices] : by_sub_chunk) {
    const SubChunk& sc = sub_chunks_[sub_index];
    auto payloads = sc.ExtractAllPayloads(resolver);
    if (!payloads.ok()) return payloads.status();
    // First record index of this sub-chunk in the flattened list.
    uint32_t base = indices[0];
    while (base > 0 && sub_chunk_of_record_[base - 1] == sub_index) --base;
    for (uint32_t idx : indices) {
      out.emplace_back(records_[idx],
                       std::move(payloads.value()[idx - base]));
    }
  }
  return out;
}

uint64_t Chunk::uncompressed_bytes() const {
  uint64_t total = 0;
  for (const SubChunk& sc : sub_chunks_) total += sc.uncompressed_bytes();
  return total;
}

void Chunk::EncodeTo(std::string* out) const {
  PutVarint64(out, id_);
  PutVarint64(out, sub_chunks_.size());
  for (const SubChunk& sc : sub_chunks_) sc.EncodeTo(out);
}

Status Chunk::DecodeFrom(Slice* input, Chunk* out) {
  *out = Chunk();
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &out->id_));
  uint64_t count;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    SubChunk sc;
    RSTORE_RETURN_IF_ERROR(SubChunk::DecodeFrom(input, &sc));
    out->AddSubChunk(std::move(sc));
  }
  RSTORE_DCHECK(out->Validate().ok()) << "decoded chunk fails validation";
  return Status::OK();
}

Status Chunk::Validate() const {
  if (records_.size() != sub_chunk_of_record_.size()) {
    return Status::Corruption("record list / sub-chunk mapping size mismatch");
  }
  // The flattened record list must be exactly the sub-chunks' keys in order.
  size_t flat = 0;
  uint64_t expected_payload_bytes = 0;
  for (size_t s = 0; s < sub_chunks_.size(); ++s) {
    expected_payload_bytes += sub_chunks_[s].serialized_size();
    for (const CompositeKey& ck : sub_chunks_[s].keys()) {
      if (flat >= records_.size()) {
        return Status::Corruption("record list shorter than sub-chunk keys");
      }
      if (!(records_[flat] == ck)) {
        return Status::Corruption("record list diverges from sub-chunk keys");
      }
      if (sub_chunk_of_record_[flat] != s) {
        return Status::Corruption("record maps to wrong sub-chunk");
      }
      ++flat;
    }
  }
  if (flat != records_.size()) {
    return Status::Corruption("record list longer than sub-chunk keys");
  }
  if (payload_bytes_ != expected_payload_bytes) {
    return Status::Corruption("payload byte accounting drifted");
  }
  if (map_.record_count() != 0 && map_.record_count() != record_count()) {
    return Status::Corruption("chunk map record count mismatch");
  }
  for (VersionId v : map_.Versions()) {
    for (uint32_t idx : map_.RecordsOf(v)) {
      if (idx >= records_.size()) {
        return Status::Corruption("chunk map references record out of range");
      }
    }
  }
  return Status::OK();
}

Status Chunk::SetChunkMap(ChunkMap map) {
  if (map.record_count() != record_count()) {
    return Status::Corruption("chunk map does not cover chunk records");
  }
  map_ = std::move(map);
  return Status::OK();
}

}  // namespace rstore
