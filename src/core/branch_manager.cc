#include "core/branch_manager.h"

#include "common/coding.h"

namespace rstore {

Result<BranchManager> BranchManager::Load(RStore* store, KVStore* backend) {
  BranchManager manager(store);
  Status parse_status = Status::OK();
  Status s = backend->Scan(
      store->options().index_table, [&](Slice key, Slice value) {
        if (!parse_status.ok() || key.size() < 2) return;
        char tag = key[0];
        if (tag != 'b' && tag != 't') return;
        Slice v(value);
        uint32_t version;
        Status cs = GetVarint32(&v, &version);
        if (!cs.ok()) {
          parse_status = cs;
          return;
        }
        std::string name(key.data() + 1, key.size() - 1);
        if (tag == 'b') {
          manager.branches_[name] = version;
        } else {
          manager.tags_[name] = version;
        }
      });
  RSTORE_RETURN_IF_ERROR(s);
  RSTORE_RETURN_IF_ERROR(parse_status);
  return manager;
}

Status BranchManager::CreateBranch(const std::string& name, VersionId from) {
  if (name.empty()) return Status::InvalidArgument("empty branch name");
  if (from >= store_->num_versions()) {
    return Status::InvalidArgument("unknown version " + std::to_string(from));
  }
  auto [it, inserted] = branches_.emplace(name, from);
  if (!inserted) return Status::AlreadyExists("branch " + name);
  return Status::OK();
}

Status BranchManager::DeleteBranch(const std::string& name) {
  if (branches_.erase(name) == 0) {
    return Status::NotFound("branch " + name);
  }
  return Status::OK();
}

Result<VersionId> BranchManager::Tip(const std::string& name) const {
  auto it = branches_.find(name);
  if (it == branches_.end()) return Status::NotFound("branch " + name);
  return it->second;
}

std::vector<std::string> BranchManager::Branches() const {
  std::vector<std::string> out;
  out.reserve(branches_.size());
  for (const auto& [name, tip] : branches_) out.push_back(name);
  return out;
}

Result<VersionId> BranchManager::Commit(const std::string& branch,
                                        CommitDelta delta) {
  auto it = branches_.find(branch);
  VersionId parent;
  if (it == branches_.end()) {
    // Bootstrapping: the first commit into an empty store creates master.
    if (branch != kMaster || store_->num_versions() != 0) {
      return Status::NotFound("branch " + branch +
                              " (CreateBranch it first)");
    }
    parent = kInvalidVersion;
  } else {
    parent = it->second;
  }
  auto version = store_->Commit(parent, std::move(delta));
  if (!version.ok()) return version.status();
  branches_[branch] = *version;
  return version;
}

Result<std::vector<Record>> BranchManager::Checkout(const std::string& branch,
                                                    QueryStats* stats) {
  auto tip = Tip(branch);
  if (!tip.ok()) return tip.status();
  return store_->GetVersion(*tip, stats);
}

Status BranchManager::Tag(const std::string& name, VersionId version) {
  if (name.empty()) return Status::InvalidArgument("empty tag name");
  if (version >= store_->num_versions()) {
    return Status::InvalidArgument("unknown version " +
                                   std::to_string(version));
  }
  auto [it, inserted] = tags_.emplace(name, version);
  if (!inserted) return Status::AlreadyExists("tag " + name);
  return Status::OK();
}

Result<VersionId> BranchManager::ResolveTag(const std::string& name) const {
  auto it = tags_.find(name);
  if (it == tags_.end()) return Status::NotFound("tag " + name);
  return it->second;
}

std::vector<std::string> BranchManager::Tags() const {
  std::vector<std::string> out;
  out.reserve(tags_.size());
  for (const auto& [name, version] : tags_) out.push_back(name);
  return out;
}

Status BranchManager::Persist(KVStore* backend) const {
  const std::string& table = store_->options().index_table;
  RSTORE_RETURN_IF_ERROR(backend->CreateTable(table));
  for (const auto& [name, tip] : branches_) {
    std::string value;
    PutVarint32(&value, tip);
    RSTORE_RETURN_IF_ERROR(backend->Put(table, "b" + name, value));
  }
  for (const auto& [name, version] : tags_) {
    std::string value;
    PutVarint32(&value, version);
    RSTORE_RETURN_IF_ERROR(backend->Put(table, "t" + name, value));
  }
  return Status::OK();
}

}  // namespace rstore
