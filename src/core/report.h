#ifndef RSTORE_CORE_REPORT_H_
#define RSTORE_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/rstore.h"

namespace rstore {

/// An operator-facing snapshot of a store's layout health: storage
/// breakdown, compression, index footprint, chunk fill levels, and the
/// distribution of per-version spans (the §2.5 retrieval-cost metric). Used
/// by the CLI shell's `report` command and handy when tuning the Options
/// knobs against a live workload.
struct StoreReport {
  uint32_t num_versions = 0;
  uint64_t num_chunks = 0;

  /// Bytes of chunk bodies in the backend vs. the raw record bytes they
  /// encode.
  uint64_t chunk_bytes = 0;
  uint64_t uncompressed_record_bytes = 0;
  double compression_ratio = 1.0;
  /// Bytes of chunk maps + persisted projections in the index table.
  uint64_t index_table_bytes = 0;
  /// In-memory footprint of the two lossy projections.
  uint64_t projection_memory_bytes = 0;

  /// Per-version span distribution.
  uint64_t total_span = 0;
  double avg_span = 0;
  uint64_t max_span = 0;
  /// Span histogram: buckets [0], [1-2], [3-5], [6-10], [11-25], [26-100],
  /// [101+], counting versions.
  std::vector<uint64_t> span_histogram;

  /// Average chunk fill relative to the configured capacity (fixed-chunk-
  /// size assumption health: the paper expects chunks "rarely more than
  /// 5-10% overfull" and mostly near capacity).
  double avg_chunk_fill = 0;
  uint64_t overfull_chunks = 0;

  /// Generic per-layer counter blocks (e.g. the chunk cache); ToString
  /// renders each as "<layer>: name=value ..." so new layers show up in
  /// reports without bespoke fields or printing code.
  struct LayerCounters {
    std::string layer;
    std::vector<std::pair<std::string, uint64_t>> counters;
  };
  std::vector<LayerCounters> layers;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Gathers a report from the store and its backend. Costs one scan of each
/// table; no chunk payload decoding.
Result<StoreReport> BuildStoreReport(const RStore& store, KVStore* backend);

}  // namespace rstore

#endif  // RSTORE_CORE_REPORT_H_
