#ifndef RSTORE_CORE_ITEM_INDEX_H_
#define RSTORE_CORE_ITEM_INDEX_H_

#include <vector>

#include "core/placement.h"
#include "version/version_graph.h"

namespace rstore {

/// Per-version transitions of placement items, derived from each item's
/// version set against the version tree. This is the delta view the
/// traversal and bottom-up partitioners consume: `added[v]` are the items
/// present in v but not in v's parent (they "originate" or re-appear at v),
/// `removed[v]` are items present in the parent but not in v.
struct ItemIndex {
  std::vector<std::vector<uint32_t>> added;
  std::vector<std::vector<uint32_t>> removed;
  /// For each leaf version, every item present in it (empty for non-leaves).
  /// Seeds the bottom-up traversal.
  std::vector<std::vector<uint32_t>> leaf_items;

  static ItemIndex Build(const VersionGraph& graph,
                         const std::vector<PlacementItem>& items);
};

}  // namespace rstore

#endif  // RSTORE_CORE_ITEM_INDEX_H_
