#include "core/baseline_partitioner.h"

#include <map>

#include "core/item_index.h"

namespace rstore {

Result<Partitioning> DeltaBaselinePartitioner::Partition(
    const PartitionInput& input) {
  const VersionGraph& graph = input.dataset->graph;
  if (!graph.IsTree()) {
    return Status::InvalidArgument("DELTA baseline requires a version tree");
  }
  const std::vector<PlacementItem>& items = *input.items;
  // Group items by origin version; each version's group fills its own
  // chunk(s) (split only when a single delta exceeds capacity).
  std::vector<std::vector<uint32_t>> by_version(graph.size());
  for (uint32_t i = 0; i < items.size(); ++i) {
    if (items[i].origin_version >= graph.size()) {
      return Status::InvalidArgument("item with out-of-range origin version");
    }
    by_version[items[i].origin_version].push_back(i);
  }
  ChunkPacker packer(input.options.chunk_capacity_bytes,
                     input.options.chunk_overflow_fraction);
  for (VersionId v = 0; v < graph.size(); ++v) {
    if (by_version[v].empty()) continue;
    packer.StartNewChunk();
    for (uint32_t item : by_version[v]) packer.Add(item, items[item].bytes);
  }
  Partitioning out = packer.Finish(/*merge_partials=*/false);
  out.layout = LayoutKind::kDeltaChain;
  return out;
}

Result<Partitioning> SubChunkBaselinePartitioner::Partition(
    const PartitionInput& input) {
  const std::vector<PlacementItem>& items = *input.items;
  // One chunk per primary key, capacity ignored: the defining property of
  // the baseline is that a key's whole history lives together.
  std::map<std::string, std::vector<uint32_t>> by_key;
  for (uint32_t i = 0; i < items.size(); ++i) {
    by_key[items[i].id.key].push_back(i);
  }
  Partitioning out;
  out.layout = LayoutKind::kSubChunkPerKey;
  out.chunks.reserve(by_key.size());
  for (auto& [key, group] : by_key) {
    out.chunks.push_back(std::move(group));
  }
  return out;
}

Result<Partitioning> SingleAddressPartitioner::Partition(
    const PartitionInput& input) {
  const std::vector<PlacementItem>& items = *input.items;
  Partitioning out;
  out.layout = LayoutKind::kChunked;
  out.chunks.reserve(items.size());
  for (uint32_t i = 0; i < items.size(); ++i) {
    out.chunks.push_back({i});
  }
  return out;
}

}  // namespace rstore
