#include "core/sub_chunk_builder.h"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/parallel.h"
#include "core/ingest_pipeline.h"

namespace rstore {

namespace {

/// One record version of a primary key, linked to the record it superseded.
struct RecordNode {
  CompositeKey ck;
  int parent = -1;
  std::vector<int> children;
};

/// The per-key record forest.
struct KeyForest {
  std::vector<RecordNode> nodes;
  std::vector<int> roots;
};

/// Emits `component` (node ids, component root first in parent-before-child
/// order) as one sub-chunk.
Status EmitComponent(const KeyForest& forest, const std::vector<int>& component,
                     const RecordPayloadMap& payloads,
                     const RecordVersionMap& record_versions,
                     const Options& options, SubChunkBuildResult* out) {
  std::vector<SubChunk::Member> members;
  members.reserve(component.size());
  std::unordered_map<int, uint32_t> position;
  for (int node_id : component) {
    const RecordNode& node = forest.nodes[node_id];
    auto pit = payloads.find(node.ck);
    if (pit == payloads.end()) {
      return Status::InvalidArgument("missing payload for " +
                                     node.ck.ToString());
    }
    SubChunk::Member m;
    m.key = node.ck;
    uint32_t pos = static_cast<uint32_t>(members.size());
    auto parent_pos = position.find(node.parent);
    m.parent_index =
        (pos == 0 || parent_pos == position.end()) ? 0 : parent_pos->second;
    if (pos == 0) m.parent_index = 0;
    m.payload = pit->second;
    position.emplace(node_id, pos);
    members.push_back(std::move(m));
  }
  auto sc = SubChunk::Build(std::move(members), options.compression);
  if (!sc.ok()) return sc.status();

  PlacementItem item;
  item.id = sc->id();
  item.origin_version = sc->id().version;
  // Union of the member records' version sets.
  for (const CompositeKey& ck : sc->keys()) {
    auto vit = record_versions.find(ck);
    if (vit != record_versions.end()) {
      item.versions.insert(item.versions.end(), vit->second.begin(),
                           vit->second.end());
    }
  }
  std::sort(item.versions.begin(), item.versions.end());
  item.versions.erase(
      std::unique(item.versions.begin(), item.versions.end()),
      item.versions.end());
  item.bytes = sc->serialized_size();

  out->sub_chunks.push_back(*std::move(sc));
  out->items.push_back(std::move(item));
  return Status::OK();
}

/// Carves the record tree under `node_id` into connected components of at
/// most k records (greedy bottom-up; see header). Returns the component
/// containing `node_id` if it has not been emitted yet, in parent-first
/// order.
Status Carve(const KeyForest& forest, int node_id, uint32_t k,
             const RecordPayloadMap& payloads,
             const RecordVersionMap& record_versions, const Options& options,
             SubChunkBuildResult* out, std::vector<int>* component) {
  std::vector<std::vector<int>> child_components;
  for (int child : forest.nodes[node_id].children) {
    std::vector<int> cc;
    RSTORE_RETURN_IF_ERROR(Carve(forest, child, k, payloads, record_versions,
                                 options, out, &cc));
    if (!cc.empty()) child_components.push_back(std::move(cc));
  }
  size_t total = 1;
  for (const auto& cc : child_components) total += cc.size();
  // Cut the largest child components off until the rest fits with the node.
  std::sort(child_components.begin(), child_components.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  size_t cut = 0;
  while (total > k && cut < child_components.size()) {
    RSTORE_RETURN_IF_ERROR(EmitComponent(forest, child_components[cut],
                                         payloads, record_versions, options,
                                         out));
    total -= child_components[cut].size();
    ++cut;
  }
  component->clear();
  component->push_back(node_id);
  for (size_t i = cut; i < child_components.size(); ++i) {
    component->insert(component->end(), child_components[i].begin(),
                      child_components[i].end());
  }
  if (component->size() == k) {
    RSTORE_RETURN_IF_ERROR(EmitComponent(forest, *component, payloads,
                                         record_versions, options, out));
    component->clear();
  }
  return Status::OK();
}

}  // namespace

uint64_t SubChunkBuildResult::total_compressed_bytes() const {
  uint64_t total = 0;
  for (const PlacementItem& item : items) total += item.bytes;
  return total;
}

uint64_t SubChunkBuildResult::total_uncompressed_bytes() const {
  uint64_t total = 0;
  for (const SubChunk& sc : sub_chunks) total += sc.uncompressed_bytes();
  return total;
}

double SubChunkBuildResult::compression_ratio() const {
  uint64_t compressed = total_compressed_bytes();
  if (compressed == 0) return 1.0;
  return static_cast<double>(total_uncompressed_bytes()) /
         static_cast<double>(compressed);
}

Result<SubChunkBuildResult> BuildSubChunks(
    const VersionedDataset& dataset, const RecordPayloadMap& payloads,
    const RecordVersionMap& record_versions, const Options& options) {
  if (!dataset.graph.IsTree()) {
    return Status::InvalidArgument(
        "sub-chunk construction requires a version tree");
  }
  const uint32_t k = std::max<uint32_t>(1, options.max_sub_chunk_records);
  SubChunkBuildResult out;
  out.sub_chunks.reserve(record_versions.size() / k + 1);

  if (options.algorithm == PartitionAlgorithm::kDeltaBaseline &&
      options.delta_baseline_record_compression) {
    // Record-level compression for the DELTA layout (paper Table 1): each
    // record is its own unit, delta-encoded against the record it
    // supersedes, which lives in an ancestor version's delta object. The
    // base payload may be unavailable for the oldest records of an online
    // batch; those are stored whole.
    for (VersionId v = 0; v < dataset.graph.size(); ++v) {
      const VersionDelta& delta = dataset.deltas[v];
      std::unordered_map<std::string, const CompositeKey*> removed_by_key;
      for (const CompositeKey& ck : delta.removed) {
        removed_by_key.emplace(ck.key, &ck);
      }
      for (const CompositeKey& ck : delta.added) {
        auto pit = payloads.find(ck);
        if (pit == payloads.end()) {
          return Status::InvalidArgument("missing payload for " +
                                         ck.ToString());
        }
        SubChunk::Member member;
        member.key = ck;
        member.payload = pit->second;
        auto rit = removed_by_key.find(ck.key);
        if (rit != removed_by_key.end()) {
          auto base = payloads.find(*rit->second);
          if (base != payloads.end()) {
            member.external_parent = *rit->second;
            member.external_parent_payload = base->second;
          }
        }
        auto sc = SubChunk::Build({std::move(member)}, options.compression);
        if (!sc.ok()) return sc.status();
        PlacementItem item;
        item.id = ck;
        item.origin_version = v;
        auto vit = record_versions.find(ck);
        if (vit != record_versions.end()) item.versions = vit->second;
        item.bytes = sc->serialized_size();
        out.sub_chunks.push_back(*std::move(sc));
        out.items.push_back(std::move(item));
      }
    }
    return out;
  }

  // Build the per-key record forests from the deltas: an added 〈K,Vc〉 with
  // a matching removed 〈K,Vp〉 in the same delta supersedes that record.
  std::map<std::string, KeyForest> forests;
  std::unordered_map<CompositeKey, int, CompositeKeyHash> node_of;
  for (VersionId v = 0; v < dataset.graph.size(); ++v) {
    const VersionDelta& delta = dataset.deltas[v];
    std::unordered_map<std::string, const CompositeKey*> removed_by_key;
    for (const CompositeKey& ck : delta.removed) {
      removed_by_key.emplace(ck.key, &ck);
    }
    for (const CompositeKey& ck : delta.added) {
      KeyForest& forest = forests[ck.key];
      int id = static_cast<int>(forest.nodes.size());
      RecordNode node;
      node.ck = ck;
      auto rit = removed_by_key.find(ck.key);
      if (rit != removed_by_key.end()) {
        auto pit = node_of.find(*rit->second);
        if (pit != node_of.end()) {
          node.parent = pit->second;
          forest.nodes[pit->second].children.push_back(id);
        }
      }
      if (node.parent < 0) forest.roots.push_back(id);
      node_of.emplace(ck, id);
      forest.nodes.push_back(std::move(node));
    }
  }

  const uint32_t ingest_shards = ResolveIngestShards(options);
  if (ingest_shards > 1 && forests.size() > 1) {
    // Sharded build: contiguous blocks of sorted keys are carved into
    // private slots, then the slots are concatenated in block order. Every
    // key's emission is self-contained (Carve/EmitComponent only read
    // shared state), so the concatenation is byte-identical to the serial
    // loop below at any shard count. Blocks (a handful per shard, not one
    // per key) keep the dispatch overhead negligible next to the per-key
    // carve + compression work; threads are capped at the core count since
    // the work is pure CPU.
    std::vector<const KeyForest*> forest_list;
    forest_list.reserve(forests.size());
    for (const auto& [key, forest] : forests) forest_list.push_back(&forest);
    const size_t n = forest_list.size();
    const unsigned threads = std::min(
        ingest_shards, std::max(1u, std::thread::hardware_concurrency()));
    const size_t num_blocks =
        std::min<size_t>(n, static_cast<size_t>(threads) * 8);
    std::vector<SubChunkBuildResult> slots(num_blocks);
    std::vector<Status> statuses(num_blocks, Status::OK());
    ParallelFor(
        num_blocks,
        [&](size_t b) {
          const size_t begin = b * n / num_blocks;
          const size_t end = (b + 1) * n / num_blocks;
          for (size_t i = begin; i < end; ++i) {
            const KeyForest& forest = *forest_list[i];
            for (int root : forest.roots) {
              std::vector<int> component;
              Status s = Carve(forest, root, k, payloads, record_versions,
                               options, &slots[b], &component);
              if (s.ok() && !component.empty()) {
                s = EmitComponent(forest, component, payloads,
                                  record_versions, options, &slots[b]);
              }
              if (!s.ok()) {
                statuses[b] = s;
                return;
              }
            }
          }
        },
        threads);
    for (size_t b = 0; b < num_blocks; ++b) {
      RSTORE_RETURN_IF_ERROR(statuses[b]);
      for (SubChunk& sc : slots[b].sub_chunks) {
        out.sub_chunks.push_back(std::move(sc));
      }
      for (PlacementItem& item : slots[b].items) {
        out.items.push_back(std::move(item));
      }
    }
    return out;
  }

  for (const auto& [key, forest] : forests) {
    for (int root : forest.roots) {
      std::vector<int> component;
      RSTORE_RETURN_IF_ERROR(Carve(forest, root, k, payloads, record_versions,
                                   options, &out, &component));
      if (!component.empty()) {
        RSTORE_RETURN_IF_ERROR(EmitComponent(forest, component, payloads,
                                             record_versions, options, &out));
      }
    }
  }
  return out;
}

}  // namespace rstore
