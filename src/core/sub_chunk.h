#ifndef RSTORE_CORE_SUB_CHUNK_H_
#define RSTORE_CORE_SUB_CHUNK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "compress/compressor.h"
#include "version/types.h"

namespace rstore {

/// A sub-chunk: up to k records sharing a primary key, stored compressed
/// together (paper §2.4, §3.4). Most sub-chunks hold a single record.
///
/// Members must be "connected" in the version tree; each non-head member is
/// delta-encoded against its parent record ("all the sibling records would
/// be delta-ed against their common parent", §3.4) and the whole blob is
/// then run through the configured block codec. The head member doubles as
/// the sub-chunk's representative composite key.
///
/// Wire format (inside a chunk):
///   varint member_count
///   per member: composite key, varint parent_index (self-index for head)
///   varint blob_size, blob = codec(concat of length-prefixed payload/delta)
class SubChunk {
 public:
  /// Resolves the payload of a record stored elsewhere; needed to extract
  /// members that are delta-encoded against an *external* base record (the
  /// record-level compression of the DELTA baseline, where a version's
  /// updated record deltas against its predecessor in an earlier chunk).
  using PayloadResolver =
      std::function<Result<std::string>(const CompositeKey&)>;

  /// One record going into a sub-chunk.
  struct Member {
    CompositeKey key;
    /// Index (into the member vector) of the record this one is delta-ed
    /// against; must equal the member's own index for the head (index 0),
    /// and reference an earlier member otherwise. Ignored when
    /// external_parent is set.
    uint32_t parent_index = 0;
    std::string payload;
    /// If set, the member is delta-encoded against this record, which lives
    /// OUTSIDE the sub-chunk; extraction then requires a PayloadResolver.
    std::optional<CompositeKey> external_parent;
    /// Build-time only: the external parent's payload (used to compute the
    /// delta; never stored).
    std::string external_parent_payload;
  };

  SubChunk() = default;

  /// Encodes `members` (head first) into a sub-chunk. Payload bytes are
  /// consumed. Fails on malformed parent references.
  static Result<SubChunk> Build(std::vector<Member> members,
                                CompressionType compression);

  /// Representative composite key (the head member's).
  const CompositeKey& id() const { return keys_[0]; }
  size_t num_records() const { return keys_.size(); }
  const std::vector<CompositeKey>& keys() const { return keys_; }
  bool Contains(const CompositeKey& ck) const;

  /// Bytes this sub-chunk occupies inside a chunk: the packing algorithms
  /// budget chunk capacity against this.
  uint64_t serialized_size() const;

  /// Approximate heap footprint of the decoded in-memory form (for cache
  /// charging).
  uint64_t ApproximateMemoryBytes() const {
    uint64_t bytes = sizeof(SubChunk) + blob_.size() +
                     parent_index_.size() * sizeof(uint32_t);
    for (const CompositeKey& ck : keys_) {
      bytes += sizeof(CompositeKey) + ck.key.size();
    }
    for (const CompositeKey& ck : external_parents_) {
      bytes += sizeof(CompositeKey) + ck.key.size();
    }
    return bytes;
  }

  /// True if any member deltas against a record outside this sub-chunk
  /// (extraction then requires a resolver).
  bool HasExternalParents() const;

  /// Decompresses and reconstructs the payload of one member.
  Result<std::string> ExtractPayload(
      const CompositeKey& ck, const PayloadResolver& resolver = nullptr) const;
  /// Reconstructs every member payload (cheaper than repeated Extract).
  Result<std::vector<std::string>> ExtractAllPayloads(
      const PayloadResolver& resolver = nullptr) const;

  /// Sum of the original (uncompressed) payload sizes, for compression-ratio
  /// reporting (paper Fig. 10).
  uint64_t uncompressed_bytes() const { return uncompressed_bytes_; }

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, SubChunk* out);

 private:
  /// parent_index_ sentinel marking an externally-based member.
  static constexpr uint32_t kExternalParent = UINT32_MAX;

  std::vector<CompositeKey> keys_;
  std::vector<uint32_t> parent_index_;
  /// Parallel to keys_; only meaningful where parent_index_ is
  /// kExternalParent.
  std::vector<CompositeKey> external_parents_;
  std::string blob_;  // compressed concatenation of payload/deltas
  CompressionType compression_ = CompressionType::kNone;
  uint64_t uncompressed_bytes_ = 0;
};

}  // namespace rstore

#endif  // RSTORE_CORE_SUB_CHUNK_H_
