#include "core/traversal_partitioner.h"

#include <deque>

#include "core/item_index.h"

namespace rstore {

Result<Partitioning> TraversalPartitioner::Partition(
    const PartitionInput& input) {
  const VersionGraph& graph = input.dataset->graph;
  if (!graph.IsTree()) {
    return Status::InvalidArgument(
        "traversal partitioner requires a version tree (run ConvertToTree)");
  }
  const std::vector<PlacementItem>& items = *input.items;
  ItemIndex index = ItemIndex::Build(graph, items);

  ChunkPacker packer(input.options.chunk_capacity_bytes,
                     input.options.chunk_overflow_fraction);
  auto place_version = [&](VersionId v) {
    for (uint32_t item : index.added[v]) {
      packer.Add(item, items[item].bytes);
    }
  };

  if (order_ == Order::kDepthFirst) {
    // Iterative pre-order DFS, children in id order.
    std::vector<VersionId> stack{0};
    while (!stack.empty()) {
      VersionId v = stack.back();
      stack.pop_back();
      place_version(v);
      const auto& children = graph.children(v);
      // Push in reverse so the smallest child id is visited first.
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  } else {
    std::deque<VersionId> queue{0};
    while (!queue.empty()) {
      VersionId v = queue.front();
      queue.pop_front();
      place_version(v);
      for (VersionId child : graph.children(v)) queue.push_back(child);
    }
  }
  return packer.Finish(/*merge_partials=*/false);
}

}  // namespace rstore
