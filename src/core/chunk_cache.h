#ifndef RSTORE_CORE_CHUNK_CACHE_H_
#define RSTORE_CORE_CHUNK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/hash.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/chunk.h"

namespace rstore {

/// Cache key for one decoded chunk. Chunk bodies are immutable once sealed,
/// but chunk *maps* are rewritten when the online partitioner folds a batch
/// into pre-existing chunks (paper §4), so a cached entry — body plus its
/// installed map — is only valid for one map generation. The key therefore
/// carries the generation the owning store's catalog assigned when the entry
/// was decoded: a map rewrite bumps the generation, old entries become
/// unreachable and age out of the LRU, and no explicit invalidation is ever
/// needed. `owner` namespaces entries so independent stores can share one
/// cache without colliding on chunk ids.
struct ChunkCacheKey {
  uint64_t owner = 0;
  ChunkId chunk = 0;
  uint64_t generation = 0;

  bool operator==(const ChunkCacheKey& other) const {
    return owner == other.owner && chunk == other.chunk &&
           generation == other.generation;
  }
};

struct ChunkCacheKeyHash {
  size_t operator()(const ChunkCacheKey& k) const {
    uint64_t h = Mix64(k.owner ^ Mix64(k.chunk ^ Mix64(k.generation)));
    return static_cast<size_t>(h);
  }
};

/// Aggregate counters across all shards (a point-in-time snapshot).
struct ChunkCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts refused because one entry exceeded a whole shard's budget.
  uint64_t rejected_inserts = 0;
  uint64_t entries = 0;
  /// Sum of the charges of resident entries.
  uint64_t charged_bytes = 0;
  uint64_t capacity_bytes = 0;

  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// A sharded, byte-budgeted LRU cache of decoded chunks for the read path.
///
/// Entries are handed out as shared_ptr<const Chunk>, so an entry evicted
/// while another thread still extracts records from it stays alive until the
/// last reader drops it. The byte budget is split evenly across the shards;
/// an entry whose charge exceeds a single shard's budget is rejected rather
/// than allowed to evict an entire shard (the paper's chunks are
/// near-constant-size, so a chunk that large indicates a misconfigured
/// capacity, not a hot chunk worth keeping).
///
/// Thread-safe: each shard is guarded by its own rstore::Mutex at
/// kLockRankChunkCache (below the storage-engine ranks — cache operations
/// never call back into a backend).
class ChunkCache {
 public:
  /// `capacity_bytes` is the total budget across all shards (must be > 0);
  /// `num_shards` is rounded up to a power of two.
  explicit ChunkCache(uint64_t capacity_bytes, uint32_t num_shards = 8);

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// Distinct owner token for key namespacing (see ChunkCacheKey::owner).
  uint64_t NewOwnerId() { return next_owner_.fetch_add(1) + 1; }

  /// Returns the cached chunk and promotes it to most-recently-used, or
  /// nullptr. Counts a hit or a miss.
  std::shared_ptr<const Chunk> Lookup(const ChunkCacheKey& key);

  /// Inserts (or replaces) an entry charged `charge` bytes against the
  /// budget, evicting least-recently-used entries as needed. An entry larger
  /// than one shard's whole budget is rejected (counted in
  /// rejected_inserts); a rejected replace also drops the stale resident
  /// entry. No-op if `chunk` is null.
  void Insert(const ChunkCacheKey& key, std::shared_ptr<const Chunk> chunk,
              uint64_t charge);

  /// Removes an entry if present (outstanding shared_ptrs stay valid).
  void Erase(const ChunkCacheKey& key);

  /// Drops every entry; counters other than entries/charged_bytes persist.
  void Clear();

  ChunkCacheStats stats() const;

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint32_t num_shards() const { return num_shards_; }
  /// Budget of a single shard — the oversized-entry rejection threshold.
  uint64_t shard_capacity_bytes() const { return shard_capacity_; }

  /// Internal-consistency check over every shard: index and LRU list agree
  /// entry for entry, charges sum to the shard's accounted total, and the
  /// total respects the shard budget. kCorruption on first violation.
  /// Debug builds RSTORE_DCHECK parts of this on every mutation; tests call
  /// it directly.
  Status Validate() const;

 private:
  // Test-only backdoor (defined in tests/core/chunk_cache_test.cc) that
  // corrupts shard state so each Validate detection branch can be proven to
  // fire.
  friend class ChunkCacheTestPeer;

  struct Entry {
    ChunkCacheKey key;
    std::shared_ptr<const Chunk> chunk;
    uint64_t charge = 0;
  };
  // front = most recently used.
  using LruList = std::list<Entry>;

  struct Shard {
    mutable Mutex mu{kLockRankChunkCache, "ChunkCache::Shard::mu"};
    LruList lru RSTORE_GUARDED_BY(mu);
    std::unordered_map<ChunkCacheKey, LruList::iterator, ChunkCacheKeyHash>
        index RSTORE_GUARDED_BY(mu);
    uint64_t charged RSTORE_GUARDED_BY(mu) = 0;
    uint64_t hits RSTORE_GUARDED_BY(mu) = 0;
    uint64_t misses RSTORE_GUARDED_BY(mu) = 0;
    uint64_t insertions RSTORE_GUARDED_BY(mu) = 0;
    uint64_t evictions RSTORE_GUARDED_BY(mu) = 0;
    uint64_t rejected RSTORE_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const ChunkCacheKey& key) const {
    return shards_[ChunkCacheKeyHash()(key) & shard_mask_];
  }

  /// Evicts from the tail until `incoming` more bytes fit the shard budget.
  void EvictToFit(Shard& shard, uint64_t incoming)
      RSTORE_REQUIRES(shard.mu);

  uint64_t capacity_bytes_;
  uint32_t num_shards_;
  uint64_t shard_mask_;
  uint64_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  // Monotone owner-id dispenser: relaxed fetch_add, value never read
  // back for control flow. analyze:atomic
  std::atomic<uint64_t> next_owner_{0};
};

}  // namespace rstore

#endif  // RSTORE_CORE_CHUNK_CACHE_H_
