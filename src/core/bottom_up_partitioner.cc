#include "core/bottom_up_partitioner.h"

#include <algorithm>
#include <deque>
#include <map>

#include "core/item_index.h"

namespace rstore {

namespace {

using Level = std::vector<uint32_t>;  // item indices, sorted
/// π collection: levels_[j] = S^{j+1}, items in chains of j+1 consecutive
/// versions. A deque so a parent can push its S¹ in front of the shifted
/// child levels in O(1).
using Pi = std::deque<Level>;

void SortUnique(Level* level) {
  std::sort(level->begin(), level->end());
  level->erase(std::unique(level->begin(), level->end()), level->end());
}

/// β limiting (§3.2.1): merge the smallest level into its shorter-chain
/// neighbour until at most `limit` levels remain.
void EnforceSubtreeLimit(Pi* pi, uint32_t limit) {
  if (limit == 0) return;
  while (pi->size() > limit) {
    size_t smallest = 0;
    for (size_t j = 1; j < pi->size(); ++j) {
      if ((*pi)[j].size() <= (*pi)[smallest].size()) smallest = j;
    }
    size_t target = smallest == 0 ? 1 : smallest - 1;
    Level& dst = (*pi)[target];
    Level& src = (*pi)[smallest];
    dst.insert(dst.end(), src.begin(), src.end());
    SortUnique(&dst);
    pi->erase(pi->begin() + static_cast<ptrdiff_t>(smallest));
  }
}

}  // namespace

Result<Partitioning> BottomUpPartitioner::Partition(
    const PartitionInput& input) {
  const VersionGraph& graph = input.dataset->graph;
  if (!graph.IsTree()) {
    return Status::InvalidArgument(
        "BOTTOM-UP requires a version tree (run ConvertToTree)");
  }
  const std::vector<PlacementItem>& items = *input.items;
  ItemIndex index = ItemIndex::Build(graph, items);

  std::vector<bool> placed(items.size(), false);
  ChunkPacker packer(input.options.chunk_capacity_bytes,
                     input.options.chunk_overflow_fraction);

  // Chunk a ψ group: exclusives keyed by chain length, longest first. A
  // fresh chunk opens per version (§3.2); the placed[] guard absorbs the
  // duplicates the union approximation can produce on branched trees.
  auto chunk_exclusives = [&](std::map<uint32_t, Level>& by_length) {
    bool opened = false;
    for (auto it = by_length.rbegin(); it != by_length.rend(); ++it) {
      for (uint32_t item : it->second) {
        if (placed[item]) continue;
        placed[item] = true;
        if (!opened) {
          packer.StartNewChunk();
          opened = true;
        }
        packer.Add(item, items[item].bytes);
      }
    }
  };

  struct Frame {
    VersionId v;
    size_t next_child = 0;
    bool entered = false;
    Pi merged;  // shifted child levels
    // Exclusives grouped child-major, then by chain length: records dying in
    // different child subtrees must not share chunks (they are never
    // co-retrieved), so each child's groups are chunked separately.
    std::vector<std::map<uint32_t, Level>> exclusives_per_child;
    bool merged_needs_dedup = false;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0, false, {}, {}, false});
  Pi result_pi;  // π returned by the frame that just popped

  while (!stack.empty()) {
    Frame& frame = stack.back();
    VersionId v = frame.v;
    if (!frame.entered) frame.entered = true;

    const auto& children = graph.children(v);
    if (frame.next_child > 0) {
      // A child just returned result_pi: fold it in.
      VersionId child = children[frame.next_child - 1];
      const Level& child_added = index.added[child];
      auto in_added = [&](uint32_t item) {
        return std::binary_search(child_added.begin(), child_added.end(),
                                  item);
      };
      bool multi_child = children.size() > 1;
      frame.exclusives_per_child.emplace_back();
      std::map<uint32_t, Level>& child_exclusives =
          frame.exclusives_per_child.back();
      for (size_t j = 0; j < result_pi.size(); ++j) {
        for (uint32_t item : result_pi[j]) {
          if (in_added(item)) {
            // Exclusive to the subtree below v: chain of length j+1.
            child_exclusives[static_cast<uint32_t>(j + 1)].push_back(item);
          } else {
            // Survives into v: chain of length j+2 starting at v.
            if (frame.merged.size() < j + 2) frame.merged.resize(j + 2);
            frame.merged[j + 1].push_back(item);
          }
        }
      }
      if (multi_child) frame.merged_needs_dedup = true;
      result_pi.clear();
    }

    if (frame.next_child < children.size()) {
      VersionId child = children[frame.next_child++];
      stack.push_back({child, 0, false, {}, {}, false});
      continue;
    }

    // All children folded: finish this version.
    for (auto& child_exclusives : frame.exclusives_per_child) {
      chunk_exclusives(child_exclusives);
    }

    Pi pi = std::move(frame.merged);
    if (frame.merged_needs_dedup) {
      for (Level& level : pi) SortUnique(&level);
    }
    if (children.empty()) {
      // Leaf: S¹ = everything present in the leaf.
      pi.clear();
      pi.push_back(index.leaf_items[v]);
    } else {
      // S¹_v = ∪_c ∆⁻(c).
      Level s1;
      for (VersionId child : children) {
        s1.insert(s1.end(), index.removed[child].begin(),
                  index.removed[child].end());
      }
      if (children.size() > 1) SortUnique(&s1);
      pi.push_front(std::move(s1));
    }
    EnforceSubtreeLimit(&pi, input.options.subtree_limit);

    if (v == 0) {
      // Root: chunk everything that remains, longest chains first.
      packer.StartNewChunk();
      for (auto it = pi.rbegin(); it != pi.rend(); ++it) {
        for (uint32_t item : *it) {
          if (placed[item]) continue;
          placed[item] = true;
          packer.Add(item, items[item].bytes);
        }
      }
      stack.pop_back();
    } else {
      result_pi = std::move(pi);
      stack.pop_back();
    }
  }

  // Defensive sweep: an item present in no version at all would never flow
  // through the traversal.
  for (uint32_t i = 0; i < items.size(); ++i) {
    if (!placed[i]) packer.Add(i, items[i].bytes);
  }
  return packer.Finish(/*merge_partials=*/true);
}

}  // namespace rstore
