#ifndef RSTORE_CORE_INGEST_PIPELINE_H_
#define RSTORE_CORE_INGEST_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/chunk.h"
#include "core/options.h"
#include "kvstore/kv_store.h"

namespace rstore {

class Executor;

/// Deterministic assignment of a serial partitioning decision's chunks to
/// ingest shards. `shards[s]` holds indices into the partition's chunk list,
/// ascending within each shard, every chunk in exactly one shard. The plan is
/// a pure function of its inputs, so the same partitioning always yields the
/// same shards regardless of thread count or scheduling.
struct IngestShardPlan {
  std::vector<std::vector<uint32_t>> shards;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards.size());
  }
  size_t num_chunks() const {
    size_t total = 0;
    for (const auto& shard : shards) total += shard.size();
    return total;
  }
};

/// Splits the chunk list of a (serial, already-decided) partitioning across
/// ingest shards. The partitioning decision itself is never sharded — that is
/// the determinism contract of the parallel write path: only the encoding and
/// writing of chunks fan out, so query results are byte-identical to serial
/// ingest at every shard count.
///
/// kOrdered packs contiguous runs balanced by estimated chunk bytes
/// (preserves the partitioner's write locality); kHash assigns each chunk by
/// a seeded hash of its index (evens out pathological size skew).
class ShardedPartitioner {
 public:
  ShardedPartitioner(uint32_t num_shards, Options::IngestShardMode mode,
                     uint64_t seed)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        mode_(mode),
        seed_(seed) {}

  /// `chunk_bytes[i]` is the estimated encoded size of chunk i, in the
  /// partitioning's chunk order.
  IngestShardPlan Plan(const std::vector<uint64_t>& chunk_bytes) const;

 private:
  uint32_t num_shards_;
  Options::IngestShardMode mode_;
  uint64_t seed_;
};

/// One chunk in encoded form, ready for the backend: the body blob for the
/// chunk table and the chunk-map blob for the index table.
struct EncodedChunk {
  ChunkId id = 0;
  std::string body;
  std::string map;
  /// Sum of original record sizes, for compression-ratio bookkeeping.
  uint64_t uncompressed_bytes = 0;
};

/// Streams groups of encoded chunks into the backend with group commit: each
/// Write() issues one WriteBatch for the bodies and one for the maps, in the
/// caller's order. Not thread-safe — the ingest pipeline guarantees a single
/// writer (writes are always issued in ascending shard order, from one
/// thread, with no pipeline lock held).
class MultiChunkWriter {
 public:
  MultiChunkWriter(KVStore* backend, std::string chunk_table,
                   std::string index_table)
      : backend_(backend),
        chunk_table_(std::move(chunk_table)),
        index_table_(std::move(index_table)) {}

  /// Group-commits the bodies and maps of `chunks`.
  Status Write(const std::vector<const EncodedChunk*>& chunks);

  uint64_t chunks_written() const { return chunks_written_; }
  /// Total encoded body bytes written (what the chunk table grew by).
  uint64_t body_bytes() const { return body_bytes_; }
  uint64_t uncompressed_bytes() const { return uncompressed_bytes_; }

 private:
  KVStore* backend_;
  std::string chunk_table_;
  std::string index_table_;
  uint64_t chunks_written_ = 0;
  uint64_t body_bytes_ = 0;
  uint64_t uncompressed_bytes_ = 0;
};

/// A pipeline stage callback: processes one shard, identified by index.
/// `encode` runs concurrently for distinct shards and must only touch that
/// shard's pre-sized slots; `write` is always invoked from the calling
/// thread, in ascending shard order, one shard at a time, with no pipeline
/// lock held (so it may call into the backend freely).
using IngestStageFn = std::function<Status(uint32_t shard)>;

struct IngestPipelineOptions {
  uint32_t num_shards = 1;
  /// How many shards the encode stage may run ahead of the writer (in-flight
  /// window). Clamped to >= 1.
  uint32_t pipeline_depth = 2;
  /// Encoder thread cap for the threaded runner; 0 = hardware concurrency.
  uint32_t max_threads = 0;
  /// When set, encode/write tasks are interleaved deterministically on this
  /// executor's virtual timeline instead of real threads (simulation mode).
  /// The executor must be idle — the pipeline drives RunUntilIdle itself.
  Executor* executor = nullptr;
};

/// Effective shard count for Options::ingest_shards (0 = hardware
/// concurrency, never less than 1).
uint32_t ResolveIngestShards(const Options& options);

/// Runs encode(s) for every shard and write(s) in ascending shard order,
/// overlapping encodes of later shards with writes of earlier ones subject
/// to `pipeline_depth`. On the first stage error the pipeline stops issuing
/// new work, drains, and returns that error; shards after the failed write
/// are never written (prefix semantics, like the serial loop).
Status RunIngestPipeline(const IngestPipelineOptions& options,
                         const IngestStageFn& encode,
                         const IngestStageFn& write);

}  // namespace rstore

#endif  // RSTORE_CORE_INGEST_PIPELINE_H_
