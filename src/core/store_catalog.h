#ifndef RSTORE_CORE_STORE_CATALOG_H_
#define RSTORE_CORE_STORE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/chunk.h"
#include "core/chunk_map.h"
#include "kvstore/kv_store.h"
#include "version/dataset.h"

namespace rstore {

/// The application server's in-memory state (paper §2.4): the two lossy
/// projections of the key/version/chunk matrix — version->chunks and
/// key->chunks — plus the bookkeeping the online partitioner needs to
/// rebuild chunk maps from memory (chunk->records and record->versions).
///
/// "We use in-memory hashmaps to store these mappings"; both projections can
/// also be persisted to / recovered from the index table in the KVS.
class StoreCatalog {
 public:
  StoreCatalog() = default;

  /// Registers a freshly written chunk and indexes its records. The record
  /// list must be the chunk's flattened member keys in order.
  void RegisterChunk(ChunkId id, std::vector<CompositeKey> records);

  /// Marks `version` as containing records of chunk `id` (drives the
  /// version->chunks projection).
  void AddVersionChunk(VersionId version, ChunkId id);

  /// Records the version a chunk's contents originated at (the version whose
  /// ∆⁺ produced its earliest record). The DELTA baseline's chain-replay
  /// retrieval fetches chunks by origin rather than membership.
  void SetChunkOrigin(ChunkId id, VersionId origin);
  std::vector<ChunkId> ChunksOriginatedAt(VersionId version) const;

  /// Authoritative record -> sorted versions map (the source from which all
  /// chunk maps are rebuilt). Callers mutate it directly during loads and
  /// commits.
  RecordVersionMap* record_versions() { return &record_versions_; }
  const RecordVersionMap& record_versions() const { return record_versions_; }

  size_t num_chunks() const { return chunk_records_.size(); }

  /// Lossy projection 1: chunks holding records of `version` (sorted).
  std::vector<ChunkId> ChunksOfVersion(VersionId version) const;
  /// Lossy projection 2: chunks holding records of primary key `key`
  /// (sorted).
  std::vector<ChunkId> ChunksOfKey(const std::string& key) const;
  /// All chunk ids (for the layouts that must scan everything).
  std::vector<ChunkId> AllChunks() const;

  /// The flattened record list of one chunk.
  const std::vector<CompositeKey>* RecordsOfChunk(ChunkId id) const;
  /// The chunk holding a specific record, or kInvalidChunk.
  static constexpr ChunkId kInvalidChunk = UINT64_MAX;
  ChunkId ChunkOfRecord(const CompositeKey& ck) const;

  /// Rebuilds chunk `id`'s map from record_versions (paper §4: "we recreate
  /// the chunk index from scratch ... possible by maintaining the required
  /// indexes around due to its small memory footprint").
  Result<ChunkMap> BuildChunkMap(ChunkId id) const;

  /// Monotone counter of how many times chunk `id`'s map has been rewritten
  /// in the backend since the chunk was written (0 for a fresh chunk). The
  /// chunk cache keys entries by (chunk, generation): bumping the generation
  /// when the online partitioner rewrites a map (paper §4) makes every
  /// cached copy of the stale decoded chunk unreachable, which is the whole
  /// invalidation story — bodies are immutable, ids are never reused.
  uint64_t ChunkMapGeneration(ChunkId id) const;
  void BumpChunkMapGeneration(ChunkId id);

  /// Per-version span: |ChunksOfVersion(v)|, the §2.5 retrieval-cost metric,
  /// as maintained by the live projections.
  uint64_t VersionSpan(VersionId version) const;
  uint64_t TotalVersionSpan() const;
  /// Span of a key-evolution query: |ChunksOfKey(key)|.
  uint64_t KeySpan(const std::string& key) const;

  /// Approximate heap footprint of the two projections, reported like the
  /// paper's index-size discussion (§2.4).
  uint64_t ProjectionMemoryBytes() const;

  /// Persists both projections into `table` (keys "v<id>" / "k<key>"), e.g.
  /// at flush/close.
  Status PersistProjections(KVStore* kvs, const std::string& table) const;
  /// Restores projections written by PersistProjections.
  Status LoadProjections(KVStore* kvs, const std::string& table);

 private:
  std::unordered_map<ChunkId, std::vector<CompositeKey>> chunk_records_;
  std::unordered_map<CompositeKey, ChunkId, CompositeKeyHash>
      chunk_of_record_;
  RecordVersionMap record_versions_;
  // Projections: sorted chunk-id lists ("adjacency lists" in the paper).
  std::unordered_map<VersionId, std::vector<ChunkId>> version_chunks_;
  std::unordered_map<std::string, std::vector<ChunkId>> key_chunks_;
  std::unordered_map<VersionId, std::vector<ChunkId>> origin_chunks_;
  /// Sparse: only chunks whose map has been rewritten at least once.
  std::unordered_map<ChunkId, uint64_t> map_generation_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_STORE_CATALOG_H_
