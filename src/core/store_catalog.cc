#include "core/store_catalog.h"

#include <algorithm>

#include "common/coding.h"

namespace rstore {

namespace {

void InsertSorted(std::vector<ChunkId>* list, ChunkId id) {
  auto it = std::lower_bound(list->begin(), list->end(), id);
  if (it == list->end() || *it != id) list->insert(it, id);
}

}  // namespace

void StoreCatalog::RegisterChunk(ChunkId id,
                                 std::vector<CompositeKey> records) {
  for (const CompositeKey& ck : records) {
    chunk_of_record_[ck] = id;
    InsertSorted(&key_chunks_[ck.key], id);
  }
  chunk_records_[id] = std::move(records);
}

void StoreCatalog::AddVersionChunk(VersionId version, ChunkId id) {
  InsertSorted(&version_chunks_[version], id);
}

void StoreCatalog::SetChunkOrigin(ChunkId id, VersionId origin) {
  InsertSorted(&origin_chunks_[origin], id);
}

std::vector<ChunkId> StoreCatalog::ChunksOriginatedAt(
    VersionId version) const {
  auto it = origin_chunks_.find(version);
  return it == origin_chunks_.end() ? std::vector<ChunkId>{} : it->second;
}

std::vector<ChunkId> StoreCatalog::ChunksOfVersion(VersionId version) const {
  auto it = version_chunks_.find(version);
  return it == version_chunks_.end() ? std::vector<ChunkId>{} : it->second;
}

std::vector<ChunkId> StoreCatalog::ChunksOfKey(const std::string& key) const {
  auto it = key_chunks_.find(key);
  return it == key_chunks_.end() ? std::vector<ChunkId>{} : it->second;
}

std::vector<ChunkId> StoreCatalog::AllChunks() const {
  std::vector<ChunkId> out;
  out.reserve(chunk_records_.size());
  for (const auto& [id, records] : chunk_records_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<CompositeKey>* StoreCatalog::RecordsOfChunk(
    ChunkId id) const {
  auto it = chunk_records_.find(id);
  return it == chunk_records_.end() ? nullptr : &it->second;
}

ChunkId StoreCatalog::ChunkOfRecord(const CompositeKey& ck) const {
  auto it = chunk_of_record_.find(ck);
  return it == chunk_of_record_.end() ? kInvalidChunk : it->second;
}

Result<ChunkMap> StoreCatalog::BuildChunkMap(ChunkId id) const {
  const std::vector<CompositeKey>* records = RecordsOfChunk(id);
  if (records == nullptr) {
    return Status::NotFound("chunk " + std::to_string(id) +
                            " not in catalog");
  }
  ChunkMap map(static_cast<uint32_t>(records->size()));
  for (uint32_t i = 0; i < records->size(); ++i) {
    auto it = record_versions_.find((*records)[i]);
    if (it == record_versions_.end()) continue;
    for (VersionId v : it->second) map.Add(v, i);
  }
  return map;
}

uint64_t StoreCatalog::ChunkMapGeneration(ChunkId id) const {
  auto it = map_generation_.find(id);
  return it == map_generation_.end() ? 0 : it->second;
}

void StoreCatalog::BumpChunkMapGeneration(ChunkId id) {
  ++map_generation_[id];
}

uint64_t StoreCatalog::VersionSpan(VersionId version) const {
  auto it = version_chunks_.find(version);
  return it == version_chunks_.end() ? 0 : it->second.size();
}

uint64_t StoreCatalog::TotalVersionSpan() const {
  uint64_t total = 0;
  for (const auto& [version, chunks] : version_chunks_) {
    total += chunks.size();
  }
  return total;
}

uint64_t StoreCatalog::KeySpan(const std::string& key) const {
  auto it = key_chunks_.find(key);
  return it == key_chunks_.end() ? 0 : it->second.size();
}

uint64_t StoreCatalog::ProjectionMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& [version, chunks] : version_chunks_) {
    total += sizeof(VersionId) + chunks.size() * sizeof(ChunkId);
  }
  for (const auto& [key, chunks] : key_chunks_) {
    total += key.size() + chunks.size() * sizeof(ChunkId);
  }
  return total;
}

namespace {

// The projections are sorted chunk-id lists ("adjacency lists"); persist
// them gap-encoded — "standard techniques from inverted indexes literature
// can be used to compress the adjacency lists" (paper §2.4).
void EncodeChunkList(const std::vector<ChunkId>& chunks, std::string* out) {
  PutVarint64(out, chunks.size());
  ChunkId previous = 0;
  for (ChunkId id : chunks) {
    PutVarint64(out, id - previous);
    previous = id;
  }
}

Status DecodeChunkList(Slice* input, std::vector<ChunkId>* chunks) {
  uint64_t count;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &count));
  chunks->resize(count);
  ChunkId previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap;
    RSTORE_RETURN_IF_ERROR(GetVarint64(input, &gap));
    previous += gap;
    (*chunks)[i] = previous;
  }
  return Status::OK();
}

}  // namespace

Status StoreCatalog::PersistProjections(KVStore* kvs,
                                        const std::string& table) const {
  RSTORE_RETURN_IF_ERROR(kvs->CreateTable(table));
  for (const auto& [version, chunks] : version_chunks_) {
    std::string key = "v";
    PutVarint32(&key, version);
    std::string value;
    EncodeChunkList(chunks, &value);
    RSTORE_RETURN_IF_ERROR(kvs->Put(table, key, value));
  }
  for (const auto& [record_key, chunks] : key_chunks_) {
    std::string key = "k" + record_key;
    std::string value;
    EncodeChunkList(chunks, &value);
    RSTORE_RETURN_IF_ERROR(kvs->Put(table, key, value));
  }
  return Status::OK();
}

Status StoreCatalog::LoadProjections(KVStore* kvs, const std::string& table) {
  version_chunks_.clear();
  key_chunks_.clear();
  Status parse_status = Status::OK();
  Status s = kvs->Scan(table, [&](Slice key, Slice value) {
    if (!parse_status.ok() || key.empty()) return;
    char tag = key[0];
    if (tag != 'v' && tag != 'k') return;  // other index-table entries
    Slice rest(key.data() + 1, key.size() - 1);
    Slice v(value);
    std::vector<ChunkId> chunks;
    Status cs = DecodeChunkList(&v, &chunks);
    if (!cs.ok()) {
      parse_status = cs;
      return;
    }
    if (tag == 'v') {
      uint32_t version;
      cs = GetVarint32(&rest, &version);
      if (!cs.ok()) {
        parse_status = cs;
        return;
      }
      version_chunks_[version] = std::move(chunks);
    } else {
      key_chunks_[rest.ToString()] = std::move(chunks);
    }
  });
  RSTORE_RETURN_IF_ERROR(s);
  return parse_status;
}

}  // namespace rstore
