#include "core/rstore.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "common/coding.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/ingest_pipeline.h"
#include "core/partitioner.h"
#include "core/sub_chunk_builder.h"

namespace rstore {

namespace {

/// Write-path registry handles, resolved once per process.
struct WriteMetrics {
  Counter* commits_total;
  Counter* batches_total;
  Counter* chunks_written_total;
  Counter* chunk_bytes_total;
  Counter* map_rewrites_total;
  /// Staged-but-unpartitioned versions across every live store: +1 per
  /// staged commit, decremented by the batch size when a batch drains, so
  /// the exported value is the process-wide backlog.
  Gauge* pending_versions;
  Histogram* batch_versions;

  static const WriteMetrics& Get() {
    static const WriteMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Default();
      WriteMetrics m;
      m.commits_total = registry.GetCounter("rstore_write_commits_total");
      m.batches_total = registry.GetCounter("rstore_write_batches_total");
      m.chunks_written_total =
          registry.GetCounter("rstore_write_chunks_written_total");
      m.chunk_bytes_total =
          registry.GetCounter("rstore_write_chunk_bytes_total");
      m.map_rewrites_total =
          registry.GetCounter("rstore_write_map_rewrites_total");
      m.pending_versions = registry.GetGauge("rstore_write_pending_versions");
      m.batch_versions = registry.GetHistogram(
          "rstore_write_batch_versions",
          Histogram::ExponentialBoundaries(1, 2.0, 10));
      return m;
    }();
    return metrics;
  }
};

/// Flight-recorder + exemplar epilogue shared by every query wrapper: claims
/// a query id, observes the per-query latency histogram with an attribution
/// exemplar, and logs the full flight record. `before`/`after` are backend
/// stats snapshots bracketing the query; the fault counters derived from
/// them are exact on the synchronous path (one query at a time) and
/// best-effort under async overlap, where concurrent queries share the
/// backend's tallies. The attribution itself rides in `qs` and is exact in
/// both engines.
void RecordQueryFlight(const char* name, const QueryStats& qs,
                       const KVStats& before, const KVStats& after,
                       const QueryDegradation* degradation,
                       const TraceContext* trace) {
  static Histogram* latency = MetricsRegistry::Default().GetHistogram(
      "rstore_query_latency_micros",
      Histogram::ExponentialBoundaries(16, 4.0, 10));
  HistogramExemplar exemplar;
  exemplar.id = FlightRecorder::Default().NextQueryId();
  exemplar.queue_wait_us = qs.queue_wait_us;
  exemplar.service_us = qs.service_us;
  exemplar.retry_penalty_us = qs.retry_penalty_us;
  exemplar.hedge_delta_us = qs.hedge_delta_us;
  latency->ObserveWithExemplar(qs.simulated_micros, exemplar);

  FlightRecord record;
  record.id = exemplar.id;
  record.name = name;
  record.total_us = qs.simulated_micros;
  record.queue_wait_us = qs.queue_wait_us;
  record.service_us = qs.service_us;
  record.retry_penalty_us = qs.retry_penalty_us;
  record.hedge_delta_us = qs.hedge_delta_us;
  record.retries = after.retries - before.retries;
  record.hedges = after.hedges - before.hedges;
  record.hedge_wins = after.hedge_wins - before.hedge_wins;
  record.timeouts = after.timeouts - before.timeouts;
  record.missing_chunks = qs.missing_chunks;
  if (degradation != nullptr) record.degradation = degradation->messages;
  if (trace != nullptr) {
    record.spans.reserve(trace->spans().size());
    for (const TraceSpan& span : trace->spans()) {
      record.spans.push_back(
          FlightSpan{span.name, span.depth, span.sim_start_us,
                     span.sim_end_us});
    }
  }
  FlightRecorder::Default().Record(std::move(record));
}

/// Flight-recorder epilogue for a batch drain: every ProcessBatch logs a
/// "process_batch" record whose counters come from the backend stats
/// bracketing the drain and whose span subtree is the drain's own spans
/// (depths re-based so "write.process_batch" sits at depth 0). Exact: the
/// write path is single-caller per store, so nothing else moves the
/// backend's tallies inside the bracket.
void RecordIngestFlight(const TraceContext& trace, size_t first_span,
                        const KVStats& before, const KVStats& after) {
  FlightRecord record;
  record.id = FlightRecorder::Default().NextQueryId();
  record.name = "process_batch";
  record.total_us = after.simulated_micros - before.simulated_micros;
  record.queue_wait_us = after.queue_wait_us - before.queue_wait_us;
  record.service_us = after.service_us - before.service_us;
  record.retry_penalty_us = after.retry_penalty_us - before.retry_penalty_us;
  record.hedge_delta_us = after.hedge_delta_us - before.hedge_delta_us;
  record.retries = after.retries - before.retries;
  record.hedges = after.hedges - before.hedges;
  record.hedge_wins = after.hedge_wins - before.hedge_wins;
  record.timeouts = after.timeouts - before.timeouts;
  const std::vector<TraceSpan>& spans = trace.spans();
  const uint32_t base_depth =
      first_span < spans.size() ? spans[first_span].depth : 0;
  record.spans.reserve(spans.size() - first_span);
  for (size_t i = first_span; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    record.spans.push_back(FlightSpan{span.name, span.depth - base_depth,
                                      span.sim_start_us, span.sim_end_us});
  }
  FlightRecorder::Default().Record(std::move(record));
}

}  // namespace

RStore::RStore(KVStore* backend, const Options& options)
    : backend_(backend), options_(options) {}

Result<std::unique_ptr<RStore>> RStore::Open(KVStore* backend,
                                             const Options& options) {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  if (options.chunk_capacity_bytes == 0) {
    return Status::InvalidArgument("chunk capacity must be positive");
  }
  RSTORE_RETURN_IF_ERROR(backend->CreateTable(options.chunk_table));
  RSTORE_RETURN_IF_ERROR(backend->CreateTable(options.index_table));
  std::unique_ptr<RStore> store(new RStore(backend, options));
  if (options.chunk_cache != nullptr) {
    store->cache_ = options.chunk_cache;
  } else if (options.cache_capacity_bytes > 0) {
    store->cache_ = std::make_shared<ChunkCache>(options.cache_capacity_bytes,
                                                 options.cache_shards);
  }
  if (store->cache_ != nullptr) {
    store->cache_owner_ = store->cache_->NewOwnerId();
  }
  return store;
}

Status RStore::WriteChunk(Chunk* chunk) {
  std::string body;
  chunk->EncodeTo(&body);
  std::string map;
  chunk->chunk_map()->EncodeTo(&map);
  RSTORE_RETURN_IF_ERROR(
      backend_->Put(options_.chunk_table, ChunkKey(chunk->id()), body));
  RSTORE_RETURN_IF_ERROR(
      backend_->Put(options_.index_table, ChunkMapKey(chunk->id()), map));
  stored_chunk_bytes_ += body.size();
  stored_record_bytes_ += chunk->uncompressed_bytes();
  const WriteMetrics& metrics = WriteMetrics::Get();
  metrics.chunks_written_total->Increment();
  metrics.chunk_bytes_total->Increment(body.size());
  return Status::OK();
}

Status RStore::PartitionAndWrite(const VersionedDataset& placement_view,
                                 const RecordPayloadMap& payloads,
                                 TraceContext* trace) {
  ScopedSpan build_span(trace, "write.build_subchunks");
  auto built = BuildSubChunks(placement_view, payloads,
                              *catalog_.record_versions(), options_);
  if (!built.ok()) return built.status();
  SubChunkBuildResult& result = built.value();
  build_span.Annotate("items", std::to_string(result.items.size()));
  build_span.End();

  ScopedSpan partition_span(trace, "write.partition");
  std::unique_ptr<Partitioner> partitioner =
      CreatePartitioner(options_.algorithm);
  if (partitioner == nullptr) {
    return Status::InvalidArgument("unknown partitioning algorithm");
  }
  PartitionInput input;
  input.dataset = &placement_view;
  input.items = &result.items;
  input.options = options_;
  auto partitioned = partitioner->Partition(input);
  if (!partitioned.ok()) return partitioned.status();
  layout_ = partitioned->layout;
  partition_span.Annotate("chunks",
                          std::to_string(partitioned->chunks.size()));
  partition_span.End();

  ScopedSpan write_span(trace, "write.encode_and_put");
  // Chunk assembly and catalog registration stay serial and in partition
  // order at every shard count: the catalog is single-threaded state and
  // chunk ids must match serial ingest exactly (the determinism contract,
  // DESIGN.md "Parallel ingest"). Only the encoding and backend writes
  // below fan out.
  std::vector<Chunk> chunks;
  chunks.reserve(partitioned->chunks.size());
  for (const std::vector<uint32_t>& item_indices : partitioned->chunks) {
    Chunk chunk(next_chunk_id_++);
    VersionId origin = kInvalidVersion;
    for (uint32_t item : item_indices) {
      origin = std::min(origin, result.items[item].origin_version);
      chunk.AddSubChunk(std::move(result.sub_chunks[item]));
    }
    catalog_.RegisterChunk(chunk.id(), chunk.records());
    if (origin != kInvalidVersion) {
      catalog_.SetChunkOrigin(chunk.id(), origin);
    }
    auto map = catalog_.BuildChunkMap(chunk.id());
    if (!map.ok()) return map.status();
    for (VersionId v : map->Versions()) {
      catalog_.AddVersionChunk(v, chunk.id());
    }
    RSTORE_RETURN_IF_ERROR(chunk.SetChunkMap(std::move(map).value()));
    chunks.push_back(std::move(chunk));
  }

  const uint32_t ingest_shards = ResolveIngestShards(options_);
  const bool sharded =
      (ingest_shards > 1 || options_.ingest_executor != nullptr) &&
      !chunks.empty();
  if (!sharded) {
    for (Chunk& chunk : chunks) {
      RSTORE_RETURN_IF_ERROR(WriteChunk(&chunk));
    }
    return Status::OK();
  }

  // Sharded path: plan over the serial decision, fan the pure per-chunk
  // encoding out, and stream each shard's group commit in ascending shard
  // order — same keys, same values, same write order as the serial loop.
  std::vector<uint64_t> chunk_bytes(chunks.size(), 0);
  for (size_t i = 0; i < chunks.size(); ++i) {
    chunk_bytes[i] = chunks[i].payload_bytes();
  }
  ShardedPartitioner sharder(ingest_shards, options_.ingest_shard_mode,
                             options_.seed);
  const IngestShardPlan plan = sharder.Plan(chunk_bytes);
  write_span.Annotate("shards", std::to_string(plan.num_shards()));

  std::vector<EncodedChunk> encoded(chunks.size());
  MultiChunkWriter writer(backend_, options_.chunk_table,
                          options_.index_table);
  IngestPipelineOptions pipeline;
  pipeline.num_shards = plan.num_shards();
  pipeline.pipeline_depth = options_.ingest_pipeline_depth;
  // Shard count sets the plan (and thus the stored bytes); the thread count
  // is capped at the core count, since encode is pure CPU work and extra
  // threads would only add context switches.
  pipeline.max_threads = std::min(
      ingest_shards, std::max(1u, std::thread::hardware_concurrency()));
  pipeline.executor = options_.ingest_executor;
  auto encode = [&](uint32_t shard) -> Status {
    for (uint32_t c : plan.shards[shard]) {
      EncodedChunk& slot = encoded[c];
      const Chunk& chunk = chunks[c];
      slot.id = chunk.id();
      chunk.EncodeTo(&slot.body);
      chunk.chunk_map().EncodeTo(&slot.map);
      slot.uncompressed_bytes = chunk.uncompressed_bytes();
    }
    return Status::OK();
  };
  auto write = [&](uint32_t shard) -> Status {
    std::vector<const EncodedChunk*> group;
    group.reserve(plan.shards[shard].size());
    for (uint32_t c : plan.shards[shard]) group.push_back(&encoded[c]);
    return writer.Write(group);
  };
  RSTORE_RETURN_IF_ERROR(RunIngestPipeline(pipeline, encode, write));

  stored_chunk_bytes_ += writer.body_bytes();
  stored_record_bytes_ += writer.uncompressed_bytes();
  const WriteMetrics& metrics = WriteMetrics::Get();
  metrics.chunks_written_total->Increment(writer.chunks_written());
  metrics.chunk_bytes_total->Increment(writer.body_bytes());
  return Status::OK();
}

Status RStore::BulkLoad(const VersionedDataset& dataset,
                        const RecordPayloadMap& payloads) {
  if (loaded_ || !tree_.graph.empty()) {
    return Status::InvalidArgument("store already loaded");
  }
  RSTORE_RETURN_IF_ERROR(dataset.Validate());
  original_graph_ = dataset.graph;
  TreeTransformResult transform = ConvertToTree(dataset);
  tree_ = std::move(transform.tree);

  // Renamed merge-arrivals are stored as fresh records carrying the original
  // payload (paper §2.5: "renamed to make them appear as newly inserted
  // records").
  const RecordPayloadMap* effective = &payloads;
  RecordPayloadMap augmented;
  if (!transform.renames.empty()) {
    augmented = payloads;
    for (const auto& [renamed, original] : transform.renames) {
      auto it = payloads.find(original);
      if (it == payloads.end()) {
        return Status::InvalidArgument("missing payload for merge record " +
                                       original.ToString());
      }
      augmented.emplace(renamed, it->second);
    }
    effective = &augmented;
  }

  *catalog_.record_versions() = tree_.BuildRecordVersionMap();
  RSTORE_RETURN_IF_ERROR(PartitionAndWrite(tree_, *effective));
  loaded_ = true;
  return Status::OK();
}

Result<VersionId> RStore::Commit(VersionId parent, CommitDelta delta,
                                 TraceContext* trace) {
  // Resolve the membership delta against the parent version.
  VersionMembership parent_members;
  if (tree_.graph.empty()) {
    if (parent != kInvalidVersion) {
      return Status::InvalidArgument(
          "first commit must use parent == kInvalidVersion");
    }
  } else {
    if (parent >= tree_.graph.size()) {
      return Status::InvalidArgument("unknown parent version");
    }
    parent_members = tree_.MaterializeVersion(parent);
  }
  std::unordered_map<std::string, CompositeKey> parent_by_key;
  parent_by_key.reserve(parent_members.size());
  for (const CompositeKey& ck : parent_members) {
    parent_by_key.emplace(ck.key, ck);
  }

  VersionId version = tree_.graph.empty()
                          ? 0
                          : static_cast<VersionId>(tree_.graph.size());
  VersionDelta membership_delta;
  std::vector<Record> payload_records;
  std::unordered_set<std::string> touched;
  for (Record& record : delta.upserts) {
    if (!touched.insert(record.key.key).second) {
      return Status::InvalidArgument("key " + record.key.key +
                                     " appears twice in commit");
    }
    CompositeKey ck(record.key.key, version);
    membership_delta.added.push_back(ck);
    auto it = parent_by_key.find(record.key.key);
    if (it != parent_by_key.end()) {
      membership_delta.removed.push_back(it->second);
    }
    payload_records.push_back(Record{ck, std::move(record.payload)});
  }
  for (const std::string& key : delta.deletes) {
    if (!touched.insert(key).second) {
      return Status::InvalidArgument("key " + key +
                                     " appears twice in commit");
    }
    auto it = parent_by_key.find(key);
    if (it == parent_by_key.end()) {
      return Status::InvalidArgument("cannot delete absent key " + key);
    }
    membership_delta.removed.push_back(it->second);
  }

  // Record the version in the graphs and stage the commit.
  if (tree_.graph.empty()) {
    original_graph_.AddRoot();
    tree_.graph.AddRoot();
  } else {
    auto r1 = original_graph_.AddVersion({parent});
    if (!r1.ok()) return r1.status();
    auto r2 = tree_.graph.AddVersion({parent});
    if (!r2.ok()) return r2.status();
  }
  tree_.deltas.push_back(membership_delta);
  loaded_ = true;

  PendingCommit pending;
  pending.version = version;
  pending.delta = std::move(membership_delta);
  delta_store_.Stage(std::move(pending), std::move(payload_records));
  const WriteMetrics& metrics = WriteMetrics::Get();
  metrics.commits_total->Increment();
  metrics.pending_versions->Add(1);

  if (delta_store_.pending_versions() >= options_.online_batch_size) {
    RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  }
  return version;
}

Result<VersionId> RStore::CommitSnapshot(
    VersionId parent, const std::map<std::string, std::string>& snapshot,
    TraceContext* trace) {
  CommitDelta delta;
  if (tree_.graph.empty()) {
    // No parent to diff against: everything is an insert.
    for (const auto& [key, payload] : snapshot) {
      delta.upserts.push_back(Record{CompositeKey(key, 0), payload});
    }
    return Commit(parent, std::move(delta), trace);
  }
  if (parent >= tree_.graph.size()) {
    return Status::InvalidArgument("unknown parent version");
  }
  // Retrieve the prior version and diff record contents.
  auto prior = GetVersion(parent, nullptr, trace);
  if (!prior.ok()) return prior.status();
  std::unordered_map<std::string, const Record*> prior_by_key;
  prior_by_key.reserve(prior->size());
  for (const Record& r : *prior) prior_by_key.emplace(r.key.key, &r);
  for (const auto& [key, payload] : snapshot) {
    auto it = prior_by_key.find(key);
    if (it == prior_by_key.end() || it->second->payload != payload) {
      delta.upserts.push_back(Record{CompositeKey(key, 0), payload});
    }
  }
  for (const Record& r : *prior) {
    if (!snapshot.count(r.key.key)) delta.deletes.push_back(r.key.key);
  }
  return Commit(parent, std::move(delta), trace);
}

Status RStore::ProcessBatch(TraceContext* trace) {
  if (delta_store_.empty()) return Status::OK();
  // Every drain gets a span tree: callers without a context (Commit-driven
  // drains, maintenance entry points) use a local one, so the flight
  // recorder can attribute every batch regardless of who triggered it.
  TraceContext local_trace;
  if (trace == nullptr) trace = &local_trace;
  const size_t first_span = trace->spans().size();
  const KVStats before = backend_->stats();
  const uint64_t batch_versions = delta_store_.pending_versions();
  ScopedSpan batch_span(trace, "write.process_batch");
  batch_span.Annotate("versions", std::to_string(batch_versions));
  Status status = ProcessBatchImpl(trace);
  // Reconcile the span tree with the backend charge before the root span
  // closes: the drain's simulated cost advances the trace clock here, so
  // the "write.process_batch" sim duration equals the backend stats delta
  // exactly (asserted in observability_test).
  const KVStats after = backend_->stats();
  trace->AdvanceSim(after.simulated_micros - before.simulated_micros);
  batch_span.End();
  if (status.ok()) {
    RecordIngestFlight(*trace, first_span, before, after);
  }
  return status;
}

Status RStore::ProcessBatchImpl(TraceContext* trace) {
  const uint64_t batch_versions = delta_store_.pending_versions();
  RecordVersionMap& record_versions = *catalog_.record_versions();

  // Phase 1 (§4): extend the membership indexes with each staged version,
  // collecting the pre-existing chunks whose maps will need one rebuild.
  ScopedSpan index_span(trace, "write.index_update");
  std::unordered_set<ChunkId> affected_chunks;
  for (const PendingCommit& commit : delta_store_.pending()) {
    VersionMembership members = tree_.MaterializeVersion(commit.version);
    for (const CompositeKey& ck : members) {
      // Staged versions are processed in id order, so appending keeps the
      // per-record version lists sorted.
      record_versions[ck].push_back(commit.version);
      ChunkId chunk = catalog_.ChunkOfRecord(ck);
      if (chunk != StoreCatalog::kInvalidChunk) {
        affected_chunks.insert(chunk);
        catalog_.AddVersionChunk(commit.version, chunk);
      }
    }
  }

  index_span.Annotate("affected_chunks",
                      std::to_string(affected_chunks.size()));
  index_span.End();

  // Phase 2: partition the batch's new records. The placement view shares
  // the full tree but exposes only the staged deltas, so the partitioning
  // algorithm sees exactly the batch sub-graph.
  VersionedDataset view;
  view.graph = tree_.graph;
  view.deltas.resize(tree_.graph.size());
  for (const PendingCommit& commit : delta_store_.pending()) {
    view.deltas[commit.version] = commit.delta;
  }
  RSTORE_RETURN_IF_ERROR(
      PartitionAndWrite(view, delta_store_.payloads(), trace));

  // Phase 3: rewrite each affected old chunk map exactly once, rebuilt from
  // the in-memory indexes — no chunk fetches (§4).
  ScopedSpan rewrite_span(trace, "write.map_rewrite");
  rewrite_span.Annotate("maps", std::to_string(affected_chunks.size()));
  for (ChunkId id : affected_chunks) {
    auto map = catalog_.BuildChunkMap(id);
    if (!map.ok()) return map.status();
    std::string encoded;
    map->EncodeTo(&encoded);
    RSTORE_RETURN_IF_ERROR(
        backend_->Put(options_.index_table, ChunkMapKey(id), encoded));
    // The rewrite invalidates every cached copy of this chunk: bumping the
    // generation changes the cache key, so stale entries are unreachable and
    // simply age out of the LRU.
    catalog_.BumpChunkMapGeneration(id);
  }
  delta_store_.Clear();
  const WriteMetrics& metrics = WriteMetrics::Get();
  metrics.batches_total->Increment();
  metrics.map_rewrites_total->Increment(affected_chunks.size());
  metrics.pending_versions->Add(-static_cast<int64_t>(batch_versions));
  metrics.batch_versions->Observe(batch_versions);
  return Status::OK();
}

Result<std::unique_ptr<RStore>> RStore::Reopen(KVStore* backend,
                                               const Options& options) {
  auto opened = Open(backend, options);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<RStore> store = std::move(opened).value();

  // 1. Version graph + deltas + original (merge-bearing) graph.
  auto graph_blob = backend->Get(options.index_table, "g");
  if (!graph_blob.ok()) {
    if (graph_blob.status().IsNotFound()) {
      return Status::InvalidArgument(
          "backend holds no flushed RStore state (missing graph)");
    }
    return graph_blob.status();
  }
  Slice input(*graph_blob);
  RSTORE_RETURN_IF_ERROR(VersionGraph::DecodeFrom(&input, &store->tree_.graph));
  store->tree_.deltas.resize(store->tree_.graph.size());
  for (VersionDelta& delta : store->tree_.deltas) {
    RSTORE_RETURN_IF_ERROR(VersionDelta::DecodeFrom(&input, &delta));
  }
  RSTORE_RETURN_IF_ERROR(
      VersionGraph::DecodeFrom(&input, &store->original_graph_));
  store->loaded_ = !store->tree_.graph.empty();

  // 2. Membership indexes from the recovered deltas.
  *store->catalog_.record_versions() = store->tree_.BuildRecordVersionMap();

  // 3. Chunk bookkeeping from the chunk table.
  Status decode_status = Status::OK();
  RSTORE_RETURN_IF_ERROR(backend->Scan(
      options.chunk_table, [&](Slice, Slice value) {
        if (!decode_status.ok()) return;
        Slice body(value);
        Chunk chunk;
        Status s = Chunk::DecodeFrom(&body, &chunk);
        if (!s.ok()) {
          decode_status = s;
          return;
        }
        VersionId origin = kInvalidVersion;
        for (const CompositeKey& ck : chunk.records()) {
          origin = std::min(origin, ck.version);
        }
        store->catalog_.RegisterChunk(chunk.id(), chunk.records());
        if (origin != kInvalidVersion) {
          store->catalog_.SetChunkOrigin(chunk.id(), origin);
        }
        store->next_chunk_id_ =
            std::max(store->next_chunk_id_, chunk.id() + 1);
        store->stored_chunk_bytes_ += value.size();
        store->stored_record_bytes_ += chunk.uncompressed_bytes();
      }));
  RSTORE_RETURN_IF_ERROR(decode_status);

  // 4. The persisted lossy projections.
  RSTORE_RETURN_IF_ERROR(
      store->catalog_.LoadProjections(backend, options.index_table));

  // 5. Retrieval rules follow the configured algorithm.
  switch (options.algorithm) {
    case PartitionAlgorithm::kDeltaBaseline:
      store->layout_ = LayoutKind::kDeltaChain;
      break;
    case PartitionAlgorithm::kSubChunkBaseline:
      store->layout_ = LayoutKind::kSubChunkPerKey;
      break;
    default:
      store->layout_ = LayoutKind::kChunked;
  }
  return store;
}

Status RStore::Repartition(TraceContext* trace) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  if (tree_.graph.empty()) return Status::OK();

  // Read every record payload back from the backend (the authoritative
  // copy; the application server keeps no payloads in memory).
  RecordPayloadMap payloads;
  std::vector<std::pair<std::string, std::string>> old_entries;  // table,key
  Status extract_status = Status::OK();
  Status s = backend_->Scan(
      options_.chunk_table, [&](Slice key, Slice value) {
        if (!extract_status.ok()) return;
        old_entries.emplace_back(options_.chunk_table, key.ToString());
        Slice body(value);
        Chunk chunk;
        Status cs = Chunk::DecodeFrom(&body, &chunk);
        if (!cs.ok()) {
          extract_status = cs;
          return;
        }
        for (const SubChunk& sc : chunk.sub_chunks()) {
          auto extracted = sc.ExtractAllPayloads();
          if (!extracted.ok()) {
            extract_status = extracted.status();
            return;
          }
          for (size_t i = 0; i < sc.keys().size(); ++i) {
            payloads[sc.keys()[i]] = std::move(extracted.value()[i]);
          }
        }
        old_entries.emplace_back(options_.index_table,
                                 ChunkMapKey(chunk.id()));
      });
  RSTORE_RETURN_IF_ERROR(s);
  RSTORE_RETURN_IF_ERROR(extract_status);

  // Rebuild from scratch: fresh catalog, fresh chunk ids, offline pass over
  // the full tree.
  for (const auto& [table, key] : old_entries) {
    RSTORE_RETURN_IF_ERROR(backend_->Delete(table, key));
  }
  catalog_ = StoreCatalog();
  stored_chunk_bytes_ = 0;
  stored_record_bytes_ = 0;
  *catalog_.record_versions() = tree_.BuildRecordVersionMap();
  RSTORE_RETURN_IF_ERROR(PartitionAndWrite(tree_, payloads, trace));
  return Status::OK();
}

Status RStore::VerifyIntegrity(TraceContext* trace) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  // Per-version record sets reconstructed from chunk maps.
  std::vector<std::unordered_set<CompositeKey, CompositeKeyHash>>
      from_chunks(tree_.graph.size());
  for (ChunkId id : catalog_.AllChunks()) {
    auto body = backend_->Get(options_.chunk_table, ChunkKey(id));
    if (!body.ok()) {
      return Status::Corruption("chunk " + std::to_string(id) +
                                " unreadable: " + body.status().ToString());
    }
    Slice input(*body);
    Chunk chunk;
    RSTORE_RETURN_IF_ERROR(Chunk::DecodeFrom(&input, &chunk));
    if (chunk.id() != id) {
      return Status::Corruption("chunk id mismatch under key " +
                                std::to_string(id));
    }
    const std::vector<CompositeKey>* records = catalog_.RecordsOfChunk(id);
    if (records == nullptr || *records != chunk.records()) {
      return Status::Corruption("catalog record list diverges for chunk " +
                                std::to_string(id));
    }
    auto map_blob = backend_->Get(options_.index_table, ChunkMapKey(id));
    if (!map_blob.ok()) {
      return Status::Corruption("chunk map " + std::to_string(id) +
                                " unreadable");
    }
    Slice map_input(*map_blob);
    ChunkMap map;
    RSTORE_RETURN_IF_ERROR(ChunkMap::DecodeFrom(&map_input, &map));
    if (map.record_count() != chunk.record_count()) {
      return Status::Corruption("chunk map size mismatch for chunk " +
                                std::to_string(id));
    }
    for (VersionId v : map.Versions()) {
      if (v >= tree_.graph.size()) {
        return Status::Corruption("chunk map references unknown version");
      }
      // The lossy projection must cover every (version, chunk) pair.
      std::vector<ChunkId> projected = catalog_.ChunksOfVersion(v);
      if (layout_ == LayoutKind::kChunked &&
          !std::binary_search(projected.begin(), projected.end(), id)) {
        return Status::Corruption(
            "version->chunk projection misses chunk " + std::to_string(id) +
            " for version " + std::to_string(v));
      }
      for (uint32_t index : map.RecordsOf(v)) {
        from_chunks[v].insert(chunk.records()[index]);
      }
    }
    // Payloads decode. Records delta-encoded against external bases (DELTA
    // layout) are exercised by the chain-replay queries instead; decoding
    // them here would require replaying every chain.
    for (const SubChunk& sc : chunk.sub_chunks()) {
      if (sc.HasExternalParents()) continue;
      auto payloads = sc.ExtractAllPayloads();
      if (!payloads.ok()) {
        return Status::Corruption("sub-chunk payloads corrupt in chunk " +
                                  std::to_string(id) + ": " +
                                  payloads.status().ToString());
      }
    }
  }
  // Cross-check against delta-derived membership.
  for (VersionId v = 0; v < tree_.graph.size(); ++v) {
    VersionMembership expected = tree_.MaterializeVersion(v);
    if (expected.size() != from_chunks[v].size()) {
      return Status::Corruption(
          "version " + std::to_string(v) + " holds " +
          std::to_string(from_chunks[v].size()) + " records in chunks but " +
          std::to_string(expected.size()) + " per deltas");
    }
    for (const CompositeKey& ck : expected) {
      if (!from_chunks[v].count(ck)) {
        return Status::Corruption("record " + ck.ToString() +
                                  " missing from chunk maps of version " +
                                  std::to_string(v));
      }
    }
  }
  return Status::OK();
}

Status RStore::Flush(TraceContext* trace) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  // Persist the projections and the version graph alongside the data.
  RSTORE_RETURN_IF_ERROR(
      catalog_.PersistProjections(backend_, options_.index_table));
  std::string graph_blob;
  tree_.graph.EncodeTo(&graph_blob);
  for (const VersionDelta& delta : tree_.deltas) delta.EncodeTo(&graph_blob);
  original_graph_.EncodeTo(&graph_blob);
  return backend_->Put(options_.index_table, "g", graph_blob);
}

Result<std::vector<Record>> RStore::GetVersion(VersionId version,
                                               QueryStats* stats,
                                               TraceContext* trace,
                                               QueryDegradation* degradation) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  QueryProcessor qp(backend_, &catalog_, &tree_, layout_, options_,
                    cache_.get(), cache_owner_);
  const KVStats before = backend_->stats();
  QueryStats local;
  auto result = qp.GetVersion(version, &local, trace, degradation);
  RecordQueryFlight("get_version", local, before, backend_->stats(),
                    degradation, trace);
  if (stats != nullptr) *stats += local;
  return result;
}

Result<std::vector<Record>> RStore::GetRange(VersionId version,
                                             const std::string& key_lo,
                                             const std::string& key_hi,
                                             QueryStats* stats,
                                             TraceContext* trace,
                                             QueryDegradation* degradation) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  QueryProcessor qp(backend_, &catalog_, &tree_, layout_, options_,
                    cache_.get(), cache_owner_);
  const KVStats before = backend_->stats();
  QueryStats local;
  auto result = qp.GetRange(version, key_lo, key_hi, &local, trace,
                            degradation);
  RecordQueryFlight("get_range", local, before, backend_->stats(),
                    degradation, trace);
  if (stats != nullptr) *stats += local;
  return result;
}

Result<std::vector<Record>> RStore::GetHistory(const std::string& key,
                                               QueryStats* stats,
                                               TraceContext* trace) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  QueryProcessor qp(backend_, &catalog_, &tree_, layout_, options_,
                    cache_.get(), cache_owner_);
  const KVStats before = backend_->stats();
  QueryStats local;
  auto result = qp.GetHistory(key, &local, trace);
  RecordQueryFlight("get_history", local, before, backend_->stats(), nullptr,
                    trace);
  if (stats != nullptr) *stats += local;
  return result;
}

Result<Record> RStore::GetRecord(const std::string& key, VersionId version,
                                 QueryStats* stats, TraceContext* trace) {
  RSTORE_RETURN_IF_ERROR(ProcessBatch(trace));
  QueryProcessor qp(backend_, &catalog_, &tree_, layout_, options_,
                    cache_.get(), cache_owner_);
  const KVStats before = backend_->stats();
  QueryStats local;
  auto result = qp.GetRecord(key, version, &local, trace);
  RecordQueryFlight("get_record", local, before, backend_->stats(), nullptr,
                    trace);
  if (stats != nullptr) *stats += local;
  return result;
}

namespace {

/// Pins a heap-held QueryProcessor until `future` completes (continuations
/// may run long after the submitting frame returns).
template <typename T>
Future<T> PinProcessor(std::shared_ptr<QueryProcessor> qp, Future<T> future) {
  future.OnReady([qp = std::move(qp)](const T&) {});
  return future;
}

template <typename T>
Future<T> AsyncError(Status error) {
  T result;
  result.status = std::move(error);
  return MakeReadyFuture(std::move(result));
}

}  // namespace

Future<AsyncQueryResult> RStore::GetVersionAsync(Executor* executor,
                                                 VersionId version,
                                                 TraceContext* trace) {
  // The flush prologue runs synchronously, like the sync twins: writes and
  // async reads never overlap (documented contract).
  Status flushed = ProcessBatch(trace);
  if (!flushed.ok()) return AsyncError<AsyncQueryResult>(std::move(flushed));
  auto qp = std::make_shared<QueryProcessor>(backend_, &catalog_, &tree_,
                                             layout_, options_, cache_.get(),
                                             cache_owner_);
  const KVStats before = backend_->stats();
  Future<AsyncQueryResult> future =
      PinProcessor(qp, qp->GetVersionAsync(executor, version, trace));
  // `trace` outlives the future (documented contract); `this` outlives every
  // query it serves.
  future.OnReady([this, before, trace](const AsyncQueryResult& result) {
    RecordQueryFlight("get_version_async", result.stats, before,
                      backend_->stats(), &result.degradation, trace);
  });
  return future;
}

Future<AsyncQueryResult> RStore::GetRangeAsync(Executor* executor,
                                               VersionId version,
                                               const std::string& key_lo,
                                               const std::string& key_hi,
                                               TraceContext* trace) {
  Status flushed = ProcessBatch(trace);
  if (!flushed.ok()) return AsyncError<AsyncQueryResult>(std::move(flushed));
  auto qp = std::make_shared<QueryProcessor>(backend_, &catalog_, &tree_,
                                             layout_, options_, cache_.get(),
                                             cache_owner_);
  const KVStats before = backend_->stats();
  Future<AsyncQueryResult> future = PinProcessor(
      qp, qp->GetRangeAsync(executor, version, key_lo, key_hi, trace));
  future.OnReady([this, before, trace](const AsyncQueryResult& result) {
    RecordQueryFlight("get_range_async", result.stats, before,
                      backend_->stats(), &result.degradation, trace);
  });
  return future;
}

Future<AsyncQueryResult> RStore::GetHistoryAsync(Executor* executor,
                                                 const std::string& key,
                                                 TraceContext* trace) {
  Status flushed = ProcessBatch(trace);
  if (!flushed.ok()) return AsyncError<AsyncQueryResult>(std::move(flushed));
  auto qp = std::make_shared<QueryProcessor>(backend_, &catalog_, &tree_,
                                             layout_, options_, cache_.get(),
                                             cache_owner_);
  const KVStats before = backend_->stats();
  Future<AsyncQueryResult> future =
      PinProcessor(qp, qp->GetHistoryAsync(executor, key, trace));
  future.OnReady([this, before, trace](const AsyncQueryResult& result) {
    RecordQueryFlight("get_history_async", result.stats, before,
                      backend_->stats(), &result.degradation, trace);
  });
  return future;
}

Future<AsyncRecordResult> RStore::GetRecordAsync(Executor* executor,
                                                 const std::string& key,
                                                 VersionId version,
                                                 TraceContext* trace) {
  Status flushed = ProcessBatch(trace);
  if (!flushed.ok()) return AsyncError<AsyncRecordResult>(std::move(flushed));
  auto qp = std::make_shared<QueryProcessor>(backend_, &catalog_, &tree_,
                                             layout_, options_, cache_.get(),
                                             cache_owner_);
  const KVStats before = backend_->stats();
  Future<AsyncRecordResult> future =
      PinProcessor(qp, qp->GetRecordAsync(executor, key, version, trace));
  future.OnReady([this, before, trace](const AsyncRecordResult& result) {
    RecordQueryFlight("get_record_async", result.stats, before,
                      backend_->stats(), nullptr, trace);
  });
  return future;
}

Result<VersionDelta> RStore::Diff(VersionId from, VersionId to) const {
  if (from >= tree_.graph.size() || to >= tree_.graph.size()) {
    return Status::InvalidArgument("unknown version in diff");
  }
  // Walk both paths from the merge base only — membership above it is
  // shared and cancels out.
  auto base = MergeBase(from, to);
  if (!base.ok()) return base.status();
  auto apply_path = [&](VersionId tip, VersionMembership* members) {
    std::vector<VersionId> path;
    for (VersionId v = tip; v != *base;
         v = tree_.graph.PrimaryParent(v)) {
      path.push_back(v);
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      const VersionDelta& delta = tree_.deltas[*it];
      for (const CompositeKey& ck : delta.removed) members->erase(ck);
      for (const CompositeKey& ck : delta.added) members->insert(ck);
    }
  };
  VersionMembership base_members = tree_.MaterializeVersion(*base);
  VersionMembership from_members = base_members;
  VersionMembership to_members = std::move(base_members);
  apply_path(from, &from_members);
  apply_path(to, &to_members);

  VersionDelta out;
  for (const CompositeKey& ck : to_members) {
    if (!from_members.count(ck)) out.added.push_back(ck);
  }
  for (const CompositeKey& ck : from_members) {
    if (!to_members.count(ck)) out.removed.push_back(ck);
  }
  std::sort(out.added.begin(), out.added.end());
  std::sort(out.removed.begin(), out.removed.end());
  return out;
}

Result<VersionId> RStore::MergeBase(VersionId a, VersionId b) const {
  if (a >= tree_.graph.size() || b >= tree_.graph.size()) {
    return Status::InvalidArgument("unknown version");
  }
  // Walk the deeper version up until both paths meet (ids are topological,
  // so the shallower of the two can never be below the other).
  while (a != b) {
    if (a > b) {
      a = tree_.graph.PrimaryParent(a);
    } else {
      b = tree_.graph.PrimaryParent(b);
    }
    if (a == kInvalidVersion || b == kInvalidVersion) {
      return Status::Corruption("disconnected version graph");
    }
  }
  return a;
}

uint64_t RStore::TotalVersionSpan() const {
  switch (layout_) {
    case LayoutKind::kChunked:
      return catalog_.TotalVersionSpan();
    case LayoutKind::kDeltaChain: {
      // span(v) = span(parent) + |chunks originated at v|.
      std::vector<uint64_t> span(tree_.graph.size(), 0);
      uint64_t total = 0;
      for (VersionId v = 0; v < tree_.graph.size(); ++v) {
        VersionId parent = tree_.graph.PrimaryParent(v);
        span[v] = (parent == kInvalidVersion ? 0 : span[parent]) +
                  catalog_.ChunksOriginatedAt(v).size();
        total += span[v];
      }
      return total;
    }
    case LayoutKind::kSubChunkPerKey:
      return static_cast<uint64_t>(tree_.graph.size()) *
             catalog_.num_chunks();
  }
  return 0;
}

double RStore::CompressionRatio() const {
  if (stored_chunk_bytes_ == 0) return 1.0;
  return static_cast<double>(stored_record_bytes_) /
         static_cast<double>(stored_chunk_bytes_);
}

}  // namespace rstore
