#ifndef RSTORE_CORE_BRANCH_MANAGER_H_
#define RSTORE_CORE_BRANCH_MANAGER_H_

#include <map>
#include <string>
#include <vector>

#include "core/rstore.h"

namespace rstore {

/// Named branches and tags over an RStore — the paper's application-server
/// VCS surface: "A user can pull any specific version by specifying its ID,
/// or may pull the latest version in a branch (including the main master
/// branch). Any changes made by the user can be committed as a new version"
/// (§2.4).
///
/// A branch is a mutable name -> tip-version binding that advances on
/// Commit; a tag is an immutable binding. Both are persisted to the store's
/// index table ("b<name>" / "t<name>") so Load() recovers them after a
/// restart. Branching is cheap: it never copies data, only adds a name.
class BranchManager {
 public:
  /// Default branch name used by the first commit into an empty store.
  static constexpr const char* kMaster = "master";

  /// Manages branches of `store` (borrowed; must outlive the manager).
  explicit BranchManager(RStore* store) : store_(store) {}

  /// Recovers the persisted branch/tag bindings from the store's backend.
  static Result<BranchManager> Load(RStore* store, KVStore* backend);

  /// Creates `name` pointing at `from`. kAlreadyExists if taken.
  Status CreateBranch(const std::string& name, VersionId from);
  /// Removes a branch binding (data and versions are never deleted).
  Status DeleteBranch(const std::string& name);

  /// The branch's current tip. kNotFound for unknown branches.
  Result<VersionId> Tip(const std::string& name) const;
  /// All branch names, sorted.
  std::vector<std::string> Branches() const;

  /// Commits `delta` on top of the branch tip and advances the branch.
  /// Committing to kMaster on an empty store bootstraps both the root
  /// version and the master branch.
  Result<VersionId> Commit(const std::string& branch, CommitDelta delta);

  /// Full checkout of a branch tip.
  Result<std::vector<Record>> Checkout(const std::string& branch,
                                       QueryStats* stats = nullptr);

  /// Immutable tag. kAlreadyExists if the tag name is taken.
  Status Tag(const std::string& name, VersionId version);
  Result<VersionId> ResolveTag(const std::string& name) const;
  std::vector<std::string> Tags() const;

  /// Writes all bindings to the backend's index table.
  Status Persist(KVStore* backend) const;

 private:
  RStore* store_;
  std::map<std::string, VersionId> branches_;
  std::map<std::string, VersionId> tags_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_BRANCH_MANAGER_H_
