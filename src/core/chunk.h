#ifndef RSTORE_CORE_CHUNK_H_
#define RSTORE_CORE_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/chunk_map.h"
#include "core/sub_chunk.h"

namespace rstore {

/// Chunk identifier: generated internally, "not intended to be semantically
/// meaningful" (paper §2.4).
using ChunkId = uint64_t;

/// KVS key under which a chunk is stored.
std::string ChunkKey(ChunkId id);

/// KVS key under which a chunk's map is stored, in the index table (chunks
/// and their maps live "in two distinct tables", paper §2.4).
std::string ChunkMapKey(ChunkId id);

/// The unit of storage in the backend KV store (paper §2.4): a set of
/// sub-chunks plus the chunk map recording which of the contained records
/// belong to which versions.
///
/// The chunk's *record list* is the flattened sequence of all sub-chunk
/// member keys, in sub-chunk order; the chunk map's bitmaps index into it.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(ChunkId id) : id_(id) {}

  ChunkId id() const { return id_; }

  /// Appends a sub-chunk; returns the index of its first record in the
  /// flattened record list.
  uint32_t AddSubChunk(SubChunk sub_chunk);

  /// Call after all sub-chunks are added, then populate via chunk_map().
  void InitChunkMap() { map_ = ChunkMap(record_count()); }
  ChunkMap* chunk_map() { return &map_; }
  const ChunkMap& chunk_map() const { return map_; }

  const std::vector<SubChunk>& sub_chunks() const { return sub_chunks_; }
  uint32_t record_count() const {
    return static_cast<uint32_t>(records_.size());
  }
  /// Flattened record list; chunk-map bitmap indices refer to it.
  const std::vector<CompositeKey>& records() const { return records_; }

  /// Payload of one record (searches the owning sub-chunk and reconstructs
  /// its delta chain). kNotFound if absent. A resolver is needed when the
  /// record is delta-encoded against a base outside this chunk.
  Result<std::string> ExtractPayload(
      const CompositeKey& ck,
      const SubChunk::PayloadResolver& resolver = nullptr) const;

  /// Payloads of the records at `record_indices` (as returned by the chunk
  /// map), decompressing each involved sub-chunk once.
  Result<std::vector<std::pair<CompositeKey, std::string>>> ExtractRecords(
      const std::vector<uint32_t>& record_indices,
      const SubChunk::PayloadResolver& resolver = nullptr) const;

  /// Total bytes of the sub-chunks' serialized forms — the value the packing
  /// algorithms compare against chunk capacity. Excludes the chunk map.
  uint64_t payload_bytes() const { return payload_bytes_; }
  /// Approximate heap footprint of this decoded chunk (sub-chunk blobs,
  /// member keys, record index, chunk map) — what a ChunkCache entry is
  /// charged against its byte budget.
  uint64_t ApproximateMemoryBytes() const;
  /// Sum of original record sizes, for compression-ratio reporting.
  uint64_t uncompressed_bytes() const;

  /// Encodes the chunk body (id + sub-chunks). The chunk map is encoded
  /// separately (ChunkMap::EncodeTo) and stored under its own KVS key in the
  /// index table, so the online partitioner can rewrite maps without
  /// fetching chunk payloads (paper §4).
  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, Chunk* out);
  /// Installs a chunk map fetched from the index table.
  Status SetChunkMap(ChunkMap map);

  /// Internal-consistency check over the chunk index: the flattened record
  /// list must mirror the sub-chunks' member keys in order, the
  /// record->sub-chunk mapping must be in range and non-decreasing,
  /// payload_bytes() must equal the sum of sub-chunk serialized sizes, and a
  /// populated chunk map must only reference records this chunk holds.
  /// Returns kCorruption with a description of the first violation.
  Status Validate() const;

 private:
  ChunkId id_ = 0;
  std::vector<SubChunk> sub_chunks_;
  std::vector<CompositeKey> records_;        // flattened member keys
  std::vector<uint32_t> sub_chunk_of_record_;  // record idx -> sub-chunk idx
  uint64_t payload_bytes_ = 0;
  ChunkMap map_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_CHUNK_H_
