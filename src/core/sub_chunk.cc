#include "core/sub_chunk.h"

#include <algorithm>

#include "common/coding.h"
#include "compress/delta_codec.h"

namespace rstore {

Result<SubChunk> SubChunk::Build(std::vector<Member> members,
                                 CompressionType compression) {
  if (members.empty()) {
    return Status::InvalidArgument("sub-chunk needs at least one member");
  }
  if (members[0].parent_index != 0 && !members[0].external_parent) {
    return Status::InvalidArgument("head member must be its own parent");
  }
  SubChunk sc;
  sc.compression_ = compression;
  sc.keys_.reserve(members.size());
  sc.parent_index_.reserve(members.size());
  sc.external_parents_.resize(members.size());

  std::string raw;
  for (uint32_t i = 0; i < members.size(); ++i) {
    const Member& m = members[i];
    if (i > 0 && m.key.key != members[0].key.key) {
      return Status::InvalidArgument(
          "sub-chunk members must share a primary key");
    }
    sc.keys_.push_back(m.key);
    sc.uncompressed_bytes_ += m.payload.size();
    if (m.external_parent) {
      sc.parent_index_.push_back(kExternalParent);
      sc.external_parents_[i] = *m.external_parent;
      std::string delta;
      delta_codec::Encode(Slice(m.external_parent_payload), Slice(m.payload),
                          &delta);
      PutLengthPrefixed(&raw, Slice(delta));
      continue;
    }
    if (i > 0 && m.parent_index >= i) {
      return Status::InvalidArgument(
          "member " + std::to_string(i) + " references non-earlier parent");
    }
    sc.parent_index_.push_back(m.parent_index);
    if (i == 0) {
      PutLengthPrefixed(&raw, Slice(m.payload));
    } else {
      std::string delta;
      delta_codec::Encode(Slice(members[m.parent_index].payload),
                          Slice(m.payload), &delta);
      PutLengthPrefixed(&raw, Slice(delta));
    }
  }
  GetCompressor(compression)->Compress(Slice(raw), &sc.blob_);
  return sc;
}

bool SubChunk::HasExternalParents() const {
  for (uint32_t parent : parent_index_) {
    if (parent == kExternalParent) return true;
  }
  return false;
}

bool SubChunk::Contains(const CompositeKey& ck) const {
  return std::find(keys_.begin(), keys_.end(), ck) != keys_.end();
}

uint64_t SubChunk::serialized_size() const {
  std::string tmp;
  EncodeTo(&tmp);
  return tmp.size();
}

Result<std::vector<std::string>> SubChunk::ExtractAllPayloads(
    const PayloadResolver& resolver) const {
  std::string raw;
  RSTORE_RETURN_IF_ERROR(
      GetCompressor(compression_)->Decompress(Slice(blob_), &raw));
  Slice input(raw);
  std::vector<std::string> payloads(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    Slice piece;
    RSTORE_RETURN_IF_ERROR(GetLengthPrefixed(&input, &piece));
    if (parent_index_[i] == kExternalParent) {
      if (!resolver) {
        return Status::InvalidArgument(
            "sub-chunk member " + keys_[i].ToString() +
            " needs an external base record but no resolver was given");
      }
      auto base = resolver(external_parents_[i]);
      if (!base.ok()) return base.status();
      RSTORE_RETURN_IF_ERROR(
          delta_codec::Apply(Slice(*base), piece, &payloads[i]));
    } else if (i == 0) {
      payloads[0] = piece.ToString();
    } else {
      RSTORE_RETURN_IF_ERROR(delta_codec::Apply(
          Slice(payloads[parent_index_[i]]), piece, &payloads[i]));
    }
  }
  return payloads;
}

Result<std::string> SubChunk::ExtractPayload(
    const CompositeKey& ck, const PayloadResolver& resolver) const {
  auto it = std::find(keys_.begin(), keys_.end(), ck);
  if (it == keys_.end()) {
    return Status::NotFound("record " + ck.ToString() + " not in sub-chunk");
  }
  // Reconstruct only the chain head..target (parents always precede).
  auto payloads = ExtractAllPayloads(resolver);
  if (!payloads.ok()) return payloads.status();
  return std::move(
      payloads.value()[static_cast<size_t>(it - keys_.begin())]);
}

void SubChunk::EncodeTo(std::string* out) const {
  PutVarint64(out, keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    keys_[i].EncodeTo(out);
    PutVarint32(out, parent_index_[i]);
    if (parent_index_[i] == kExternalParent) {
      external_parents_[i].EncodeTo(out);
    }
  }
  out->push_back(static_cast<char>(compression_));
  PutVarint64(out, uncompressed_bytes_);
  PutLengthPrefixed(out, Slice(blob_));
}

Status SubChunk::DecodeFrom(Slice* input, SubChunk* out) {
  uint64_t count;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &count));
  if (count == 0) return Status::Corruption("empty sub-chunk");
  if (count > input->size()) {
    // Untrusted count: each member costs >= 2 encoded bytes, so never
    // allocate more slots than the input could possibly hold.
    return Status::Corruption("sub-chunk member count exceeds input");
  }
  out->keys_.clear();
  out->parent_index_.clear();
  out->external_parents_.clear();
  out->keys_.reserve(count);
  out->parent_index_.reserve(count);
  out->external_parents_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CompositeKey key;
    uint32_t parent;
    RSTORE_RETURN_IF_ERROR(CompositeKey::DecodeFrom(input, &key));
    RSTORE_RETURN_IF_ERROR(GetVarint32(input, &parent));
    CompositeKey external;
    if (parent == kExternalParent) {
      RSTORE_RETURN_IF_ERROR(CompositeKey::DecodeFrom(input, &external));
    } else if (i == 0 && parent != 0) {
      return Status::Corruption("sub-chunk head parent must be 0");
    } else if (i > 0 && parent >= i) {
      return Status::Corruption("sub-chunk parent index out of order");
    }
    out->keys_.push_back(std::move(key));
    out->parent_index_.push_back(parent);
    out->external_parents_.push_back(std::move(external));
  }
  if (input->empty()) return Status::Corruption("truncated sub-chunk");
  out->compression_ = static_cast<CompressionType>((*input)[0]);
  input->RemovePrefix(1);
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &out->uncompressed_bytes_));
  Slice blob;
  RSTORE_RETURN_IF_ERROR(GetLengthPrefixed(input, &blob));
  out->blob_ = blob.ToString();
  return Status::OK();
}

}  // namespace rstore
