#ifndef RSTORE_CORE_SHINGLE_PARTITIONER_H_
#define RSTORE_CORE_SHINGLE_PARTITIONER_H_

#include "core/partitioner.h"

namespace rstore {

/// Shingle (min-hash) based partitioning, paper §3.1 / Algorithms 1-2.
///
/// For every item, l min-hashes of its version set are computed with a
/// pairwise-independent hash family; items are sorted lexicographically by
/// their shingle vectors, placing items whose version sets overlap heavily
/// next to each other, and packed into chunks in that order.
class ShinglePartitioner : public Partitioner {
 public:
  const char* name() const override { return "SHINGLE"; }
  Result<Partitioning> Partition(const PartitionInput& input) override;
};

}  // namespace rstore

#endif  // RSTORE_CORE_SHINGLE_PARTITIONER_H_
