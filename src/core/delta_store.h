#ifndef RSTORE_CORE_DELTA_STORE_H_
#define RSTORE_CORE_DELTA_STORE_H_

#include <vector>

#include "core/record.h"
#include "version/delta.h"

namespace rstore {

/// A commit as received from a client: "the delta includes those records
/// which have changed w.r.t. the previous version, records that are newly
/// added and records that are deleted" (paper §2.4).
struct CommitDelta {
  /// New or updated records: primary key + full payload.
  std::vector<Record> upserts;  // Record::key.version is ignored on input
  /// Primary keys deleted relative to the parent version.
  std::vector<std::string> deletes;
};

/// A commit staged for batch processing: its resolved membership delta plus
/// the new record payloads.
struct PendingCommit {
  VersionId version = kInvalidVersion;
  VersionDelta delta;
};

/// The write store of paper §4: "the received deltas are kept in a separate
/// storage area, that are processed in a batch fashion by the data placement
/// module." Holds the staged commits and their payloads until the online
/// partitioner drains them.
class DeltaStore {
 public:
  void Stage(PendingCommit commit, std::vector<Record> payloads);

  size_t pending_versions() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

  const std::vector<PendingCommit>& pending() const { return pending_; }
  const RecordPayloadMap& payloads() const { return payloads_; }

  /// Number of staged payload bytes (write-store footprint).
  uint64_t payload_bytes() const { return payload_bytes_; }

  /// Empties the store after a batch has been incorporated.
  void Clear();

 private:
  std::vector<PendingCommit> pending_;
  RecordPayloadMap payloads_;
  uint64_t payload_bytes_ = 0;
};

}  // namespace rstore

#endif  // RSTORE_CORE_DELTA_STORE_H_
