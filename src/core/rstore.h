#ifndef RSTORE_CORE_RSTORE_H_
#define RSTORE_CORE_RSTORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/chunk_cache.h"
#include "core/delta_store.h"
#include "core/options.h"
#include "core/placement.h"
#include "core/query_processor.h"
#include "core/record.h"
#include "core/store_catalog.h"
#include "kvstore/kv_store.h"
#include "version/dataset.h"
#include "version/tree_transform.h"

namespace rstore {

/// The RStore application server (paper Fig. 2): a versioning and branching
/// layer over a distributed key-value store.
///
/// Typical use:
///
///   Cluster backend(cluster_options);
///   auto store = RStore::Open(&backend, options);
///   // Either bulk-load an existing versioned dataset ...
///   store->BulkLoad(dataset, payloads);
///   // ... or build history commit by commit:
///   VersionId v1 = *store->Commit(v0, {.upserts = {...}, .deletes = {...}});
///   // Queries:
///   auto all = store->GetVersion(v1);                  // full checkout
///   auto some = store->GetRange(v1, "k10", "k19");     // partial checkout
///   auto history = store->GetHistory("k10");           // record evolution
///   auto one = store->GetRecord("k10", v1);            // point lookup
///
/// Commits accumulate in the delta store and are partitioned in batches
/// (Options::online_batch_size, paper §4); Flush() forces the pending batch
/// through. All methods are single-threaded; wrap externally if sharing.
/// With Options::ingest_shards > 1 the write path fans sub-chunk compression
/// and chunk encoding out across worker threads internally (or across
/// Options::ingest_executor's virtual timeline), but the public interface
/// stays single-threaded and the stored bytes are identical to serial
/// ingest — see DESIGN.md "Parallel ingest" for the determinism contract.
class RStore {
 public:
  /// Creates the layer on `backend` (borrowed; must outlive the store) and
  /// creates the chunk/index tables.
  static Result<std::unique_ptr<RStore>> Open(KVStore* backend,
                                              const Options& options);

  /// Recovers an application server from a backend previously populated by
  /// another RStore instance that called Flush(): reloads the version graph
  /// and deltas, the persisted projections, and rebuilds the chunk/record
  /// bookkeeping by scanning the chunk table. The paper's AS "uses the KVS
  /// for persisting any of its data structures" — this is the restart path.
  static Result<std::unique_ptr<RStore>> Reopen(KVStore* backend,
                                                const Options& options);

  /// Loads a complete versioned dataset at once, running the configured
  /// offline partitioning algorithm over the whole version graph. `dataset`
  /// may contain merges (it is tree-transformed internally, paper §2.5);
  /// `payloads` must hold a payload for every added composite key. Callable
  /// once, on an empty store.
  Status BulkLoad(const VersionedDataset& dataset,
                  const RecordPayloadMap& payloads);

  /// Commits a new version derived from `parent`. The commit is staged in
  /// the delta store and physically partitioned when the batch fills
  /// (§4). Returns the new version id immediately. When the commit triggers
  /// a batch drain and `trace` is set, the drain's "write.*" spans land in
  /// it; every drain is also logged to the flight recorder regardless.
  Result<VersionId> Commit(VersionId parent, CommitDelta delta,
                           TraceContext* trace = nullptr);

  /// Commits a FULL snapshot: the server diffs `snapshot` (key -> payload,
  /// the complete desired contents of the new version) against the parent
  /// and commits only the changes — the paper's fallback for clients that
  /// cannot produce a delta themselves: "the server needs to retrieve the
  /// prior version and perform a diff operation to check which records have
  /// been modified" (§2.4). Unchanged records cost nothing.
  Result<VersionId> CommitSnapshot(
      VersionId parent, const std::map<std::string, std::string>& snapshot,
      TraceContext* trace = nullptr);

  /// Forces the pending batch through the online partitioner and persists
  /// the projections.
  Status Flush(TraceContext* trace = nullptr);

  /// Full offline repartitioning of the entire store: every record payload
  /// is read back from the backend, the configured algorithm is re-run over
  /// the complete version tree, and all chunks, chunk maps and projections
  /// are rewritten. Restores offline-quality layout after a long sequence of
  /// online batches — "online partitioning without repartitioning, combined
  /// with a full repartitioning periodically, presents a pragmatic approach
  /// to handling updates" (paper §4).
  Status Repartition(TraceContext* trace = nullptr);

  /// Offline integrity check (fsck): every chunk body and chunk map in the
  /// backend decodes, agrees with the in-memory catalog, and the per-version
  /// record sets reconstructed from the chunk maps exactly equal the
  /// membership derived from the deltas. O(total membership); returns
  /// kCorruption naming the first inconsistency.
  Status VerifyIntegrity(TraceContext* trace = nullptr);

  // -- Queries (see QueryProcessor). Staged-but-unflushed versions are
  //    flushed on demand before being queried. Pass a TraceContext to
  //    capture the query's span tree (exportable as Chrome trace JSON).
  //    Under Options::read_mode == ReadMode::kBestEffort, GetVersion and
  //    GetRange skip chunks the backend cannot serve and report them via
  //    `degradation` (and QueryStats::missing_chunks) instead of failing.
  Result<std::vector<Record>> GetVersion(VersionId version,
                                         QueryStats* stats = nullptr,
                                         TraceContext* trace = nullptr,
                                         QueryDegradation* degradation =
                                             nullptr);
  Result<std::vector<Record>> GetRange(VersionId version,
                                       const std::string& key_lo,
                                       const std::string& key_hi,
                                       QueryStats* stats = nullptr,
                                       TraceContext* trace = nullptr,
                                       QueryDegradation* degradation =
                                           nullptr);
  Result<std::vector<Record>> GetHistory(const std::string& key,
                                         QueryStats* stats = nullptr,
                                         TraceContext* trace = nullptr);
  Result<Record> GetRecord(const std::string& key, VersionId version,
                           QueryStats* stats = nullptr,
                           TraceContext* trace = nullptr);

  // -- Asynchronous query twins (see QueryProcessor). Each flushes any
  //    staged batch synchronously, then submits the query onto `executor`'s
  //    virtual timeline; the future completes at the query's simulated
  //    completion instant with results byte-identical to the sync method
  //    and the query's own cost accounting in the payload. All async
  //    queries against one store must share one Executor, and writes must
  //    not run while queries are in flight (drain the executor first).
  Future<AsyncQueryResult> GetVersionAsync(Executor* executor,
                                           VersionId version,
                                           TraceContext* trace = nullptr);
  Future<AsyncQueryResult> GetRangeAsync(Executor* executor, VersionId version,
                                         const std::string& key_lo,
                                         const std::string& key_hi,
                                         TraceContext* trace = nullptr);
  Future<AsyncQueryResult> GetHistoryAsync(Executor* executor,
                                           const std::string& key,
                                           TraceContext* trace = nullptr);
  Future<AsyncRecordResult> GetRecordAsync(Executor* executor,
                                           const std::string& key,
                                           VersionId version,
                                           TraceContext* trace = nullptr);

  /// Membership difference between two arbitrary versions — the general
  /// form of the paper's ∆ (symmetric: Diff(a,b) is the inverse of
  /// Diff(b,a)). `added` holds records in `to` but not `from`, `removed` the
  /// reverse. Computed from the in-memory deltas; no backend traffic.
  Result<VersionDelta> Diff(VersionId from, VersionId to) const;

  /// Nearest common ancestor of two versions along primary-parent paths
  /// (the git merge-base); useful for three-way merge tooling.
  Result<VersionId> MergeBase(VersionId a, VersionId b) const;

  /// The original (possibly merged) version graph, for provenance.
  const VersionGraph& graph() const { return original_graph_; }
  /// The tree-transformed dataset whose composite keys match storage.
  const VersionedDataset& dataset() const { return tree_; }
  uint32_t num_versions() const { return tree_.graph.size(); }

  const StoreCatalog& catalog() const { return catalog_; }
  LayoutKind layout() const { return layout_; }
  const Options& options() const { return options_; }

  /// The decoded-chunk cache serving this store's reads (own or shared via
  /// Options::chunk_cache), or nullptr when caching is disabled.
  ChunkCache* chunk_cache() const { return cache_.get(); }

  /// Σ_v |chunks(v)| under the live projections — the paper's total version
  /// span metric, adjusted for the baseline layouts' retrieval rules.
  uint64_t TotalVersionSpan() const;
  /// Number of chunks written so far (the §2.5 storage-cost proxy).
  uint64_t NumChunks() const { return catalog_.num_chunks(); }
  /// uncompressed-record-bytes / stored-chunk-bytes across all chunks.
  double CompressionRatio() const;

 private:
  RStore(KVStore* backend, const Options& options);

  /// Runs sub-chunking + partitioning over `dataset` restricted to
  /// `delta_source` and writes the resulting chunks; shared by BulkLoad
  /// (whole graph) and ProcessBatch (batch subgraph). When `trace` is
  /// non-null, the sub-chunk build / partition / encode+write phases each
  /// get a "write.*" span.
  Status PartitionAndWrite(const VersionedDataset& placement_view,
                           const RecordPayloadMap& payloads,
                           TraceContext* trace = nullptr);

  /// Drains the delta store: updates membership indexes, partitions the
  /// batch's new records, writes new chunks, and rewrites the chunk maps of
  /// every affected pre-existing chunk once (§4). Traced when `trace` is
  /// non-null (queries forward their context here because a query against a
  /// staged version flushes the batch first).
  Status ProcessBatch(TraceContext* trace = nullptr);
  /// ProcessBatch's body; the wrapper owns the "write.process_batch" span,
  /// stats bracketing, sim-clock reconciliation and flight-recorder entry.
  Status ProcessBatchImpl(TraceContext* trace);

  Status WriteChunk(Chunk* chunk);

  KVStore* backend_;
  Options options_;
  LayoutKind layout_ = LayoutKind::kChunked;
  bool loaded_ = false;

  VersionGraph original_graph_;  // with merge edges
  VersionedDataset tree_;        // transformed, matches storage keys

  StoreCatalog catalog_;
  DeltaStore delta_store_;
  /// Shared ownership: Options::chunk_cache may outlive (and span) stores.
  std::shared_ptr<ChunkCache> cache_;
  /// This store's namespace within cache_ (see ChunkCacheKey::owner).
  uint64_t cache_owner_ = 0;
  ChunkId next_chunk_id_ = 0;
  uint64_t stored_chunk_bytes_ = 0;
  uint64_t stored_record_bytes_ = 0;
};

}  // namespace rstore

#endif  // RSTORE_CORE_RSTORE_H_
