#ifndef RSTORE_CORE_RECORD_H_
#define RSTORE_CORE_RECORD_H_

#include <string>
#include <unordered_map>

#include "version/types.h"

namespace rstore {

/// A record: an immutable payload addressed by its composite key. Payloads
/// are opaque bytes — JSON documents in the paper's experiments, but RStore
/// "makes no assumptions about the structure, type or the size of a record"
/// (§2.1).
struct Record {
  CompositeKey key;
  std::string payload;
};

/// Staging map from composite key to payload, used on the ingest/bulk-load
/// path before records are folded into sub-chunks.
using RecordPayloadMap =
    std::unordered_map<CompositeKey, std::string, CompositeKeyHash>;

}  // namespace rstore

#endif  // RSTORE_CORE_RECORD_H_
