#ifndef RSTORE_CORE_TRAVERSAL_PARTITIONER_H_
#define RSTORE_CORE_TRAVERSAL_PARTITIONER_H_

#include "core/partitioner.h"

namespace rstore {

/// Greedy traversal partitioning, paper §3.3 / Algorithm 4: walk the version
/// tree from the root, and as each version is visited, append the records
/// that originate there to the current chunk. Depth-first keeps a branch's
/// records together (better: descendants reuse the ancestor's chunks);
/// breadth-first interleaves sibling branches (the paper's negative
/// ablation — "BREADTHFIRST is always worse than DEPTHFIRST except for
/// linear chains when they reduce to the same technique").
class TraversalPartitioner : public Partitioner {
 public:
  enum class Order { kDepthFirst, kBreadthFirst };

  explicit TraversalPartitioner(Order order) : order_(order) {}

  const char* name() const override {
    return order_ == Order::kDepthFirst ? "DEPTHFIRST" : "BREADTHFIRST";
  }
  Result<Partitioning> Partition(const PartitionInput& input) override;

 private:
  Order order_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_TRAVERSAL_PARTITIONER_H_
