#include "core/delta_store.h"

namespace rstore {

void DeltaStore::Stage(PendingCommit commit, std::vector<Record> payloads) {
  pending_.push_back(std::move(commit));
  for (Record& record : payloads) {
    payload_bytes_ += record.payload.size();
    payloads_.emplace(record.key, std::move(record.payload));
  }
}

void DeltaStore::Clear() {
  pending_.clear();
  payloads_.clear();
  payload_bytes_ = 0;
}

}  // namespace rstore
