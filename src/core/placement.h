#ifndef RSTORE_CORE_PLACEMENT_H_
#define RSTORE_CORE_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "version/dataset.h"

namespace rstore {

/// The unit the partitioning algorithms place into chunks: a sub-chunk
/// (paper §3.4 treats sub-chunks as records; with k = 1 an item is exactly
/// one record).
struct PlacementItem {
  /// The sub-chunk's representative composite key.
  CompositeKey id;
  /// Version where the representative originates (placement-time home for
  /// the traversal algorithms).
  VersionId origin_version = kInvalidVersion;
  /// Sorted union of the member records' version sets: the versions whose
  /// retrieval must touch whatever chunk this item lands in.
  std::vector<VersionId> versions;
  /// Serialized size, charged against chunk capacity.
  uint64_t bytes = 0;
};

/// How the stored layout answers queries; the baselines of paper §2.2 have
/// fundamentally different retrieval rules than the chunked design.
enum class LayoutKind {
  /// Chunked layout with projection indexes (RStore proper; also the
  /// single-address-space baseline, which is the degenerate one-record-per-
  /// chunk case).
  kChunked,
  /// Per-version delta objects: reconstructing V fetches every object on
  /// the root->V path.
  kDeltaChain,
  /// One chunk per primary key: full-version retrieval fetches everything.
  kSubChunkPerKey,
};

/// Output of a partitioning algorithm: which items go in which chunk.
/// Chunk c holds the items whose indices are in `chunks[c]`; item order
/// within a chunk is preserved into the physical chunk layout.
struct Partitioning {
  LayoutKind layout = LayoutKind::kChunked;
  std::vector<std::vector<uint32_t>> chunks;

  uint64_t num_chunks() const { return chunks.size(); }
  uint64_t num_items() const {
    uint64_t n = 0;
    for (const auto& c : chunks) n += c.size();
    return n;
  }
};

/// Shared bin-filling helper enforcing the fixed-chunk-size assumption
/// (paper §2.5): chunks target `capacity` bytes with up to
/// `overflow_fraction` tolerated, and a chunk never starts a new item once
/// at or beyond capacity.
class ChunkPacker {
 public:
  ChunkPacker(uint64_t capacity, double overflow_fraction);

  /// Appends an item to the current chunk, closing it first if the item
  /// would not fit. An item larger than the hard limit gets a chunk of its
  /// own.
  void Add(uint32_t item_index, uint64_t bytes);

  /// Forces the next Add into a fresh chunk (used at version boundaries by
  /// BOTTOM-UP, paper §3.2: "the chunking process at any given version
  /// starts filling a new chunk").
  void StartNewChunk();

  /// Returns the accumulated partitioning. If `merge_partials` is set,
  /// under-filled chunks are greedily combined (first-fit decreasing) while
  /// staying within capacity — "the partial chunks that may get created at
  /// the end of every chunking step are merged at the end to reduce
  /// fragmentation" (§3.2).
  Partitioning Finish(bool merge_partials);

 private:
  struct Bin {
    std::vector<uint32_t> items;
    uint64_t bytes = 0;
  };

  uint64_t capacity_;
  uint64_t hard_limit_;
  std::vector<Bin> bins_;
  bool force_new_ = true;
};

/// Total version span of a partitioning: sum over versions of the number of
/// chunks that must be retrieved to reconstruct that version — the paper's
/// headline quality metric (Figs. 8-10). For kDeltaChain the span of V is
/// the chunk count along root->V; for kSubChunkPerKey it is the total chunk
/// count for every version.
uint64_t TotalVersionSpan(const Partitioning& partitioning,
                          const std::vector<PlacementItem>& items,
                          const VersionGraph& graph);

/// Per-version spans (same semantics), indexed by VersionId.
std::vector<uint64_t> PerVersionSpans(const Partitioning& partitioning,
                                      const std::vector<PlacementItem>& items,
                                      const VersionGraph& graph);

}  // namespace rstore

#endif  // RSTORE_CORE_PLACEMENT_H_
