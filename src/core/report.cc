#include "core/report.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/string_util.h"

namespace rstore {

namespace {

size_t SpanBucket(uint64_t span) {
  if (span == 0) return 0;
  if (span <= 2) return 1;
  if (span <= 5) return 2;
  if (span <= 10) return 3;
  if (span <= 25) return 4;
  if (span <= 100) return 5;
  return 6;
}

const char* kBucketLabels[] = {"0", "1-2", "3-5", "6-10", "11-25", "26-100",
                               "101+"};

}  // namespace

Result<StoreReport> BuildStoreReport(const RStore& store, KVStore* backend) {
  StoreReport report;
  report.num_versions = store.num_versions();
  report.num_chunks = store.catalog().num_chunks();
  report.compression_ratio = store.CompressionRatio();
  report.projection_memory_bytes = store.catalog().ProjectionMemoryBytes();

  const Options& options = store.options();
  Status s = backend->Scan(options.chunk_table, [&](Slice, Slice value) {
    report.chunk_bytes += value.size();
    if (value.size() >
        options.chunk_capacity_bytes +
            static_cast<uint64_t>(options.chunk_capacity_bytes *
                                  options.chunk_overflow_fraction)) {
      ++report.overfull_chunks;
    }
  });
  RSTORE_RETURN_IF_ERROR(s);
  s = backend->Scan(options.index_table, [&](Slice, Slice value) {
    report.index_table_bytes += value.size();
  });
  RSTORE_RETURN_IF_ERROR(s);

  report.uncompressed_record_bytes = static_cast<uint64_t>(
      report.compression_ratio * static_cast<double>(report.chunk_bytes));

  report.span_histogram.assign(7, 0);
  for (VersionId v = 0; v < report.num_versions; ++v) {
    uint64_t span = store.catalog().VersionSpan(v);
    report.total_span += span;
    report.max_span = std::max(report.max_span, span);
    ++report.span_histogram[SpanBucket(span)];
  }
  report.avg_span = report.num_versions == 0
                        ? 0
                        : static_cast<double>(report.total_span) /
                              report.num_versions;
  report.avg_chunk_fill =
      report.num_chunks == 0
          ? 0
          : static_cast<double>(report.chunk_bytes) /
                (static_cast<double>(report.num_chunks) *
                 static_cast<double>(options.chunk_capacity_bytes));

  if (const ChunkCache* cache = store.chunk_cache()) {
    ChunkCacheStats cs = cache->stats();
    StoreReport::LayerCounters layer;
    layer.layer = "chunk cache";
    layer.counters = {
        {"hits", cs.hits},
        {"misses", cs.misses},
        {"hit_rate_pct", static_cast<uint64_t>(cs.hit_rate() * 100.0 + 0.5)},
        {"evictions", cs.evictions},
        {"entries", cs.entries},
        {"bytes", cs.charged_bytes},
        {"capacity", cs.capacity_bytes},
    };
    report.layers.push_back(std::move(layer));
  }

  // Fold the process-wide registry counters in, one layer block per
  // subsystem token ("rstore_kvs_bytes_read_total" -> layer "metrics/kvs",
  // counter "bytes_read_total"). Note these are process-wide totals: with
  // several stores in one process the blocks aggregate across all of them.
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  std::vector<StoreReport::LayerCounters> metric_layers;
  constexpr char kPrefix[] = "rstore_";
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    const size_t subsystem_start = sizeof(kPrefix) - 1;
    const size_t subsystem_end = name.find('_', subsystem_start);
    if (subsystem_end == std::string::npos) continue;
    const std::string layer_name =
        "metrics/" + name.substr(subsystem_start,
                                 subsystem_end - subsystem_start);
    if (metric_layers.empty() || metric_layers.back().layer != layer_name) {
      // Snapshot counters are sorted by name, so a subsystem's counters are
      // contiguous: a new layer starts exactly when the prefix changes.
      metric_layers.push_back(StoreReport::LayerCounters{layer_name, {}});
    }
    metric_layers.back().counters.emplace_back(
        name.substr(subsystem_end + 1), value);
  }
  for (StoreReport::LayerCounters& layer : metric_layers) {
    report.layers.push_back(std::move(layer));
  }
  return report;
}

std::string StoreReport::ToString() const {
  std::string out;
  out += StringPrintf("versions:          %u\n", num_versions);
  out += StringPrintf("chunks:            %llu (%s stored, %.2fx compression, "
                      "avg fill %.0f%%, %llu overfull)\n",
                      (unsigned long long)num_chunks,
                      HumanBytes(chunk_bytes).c_str(), compression_ratio,
                      avg_chunk_fill * 100.0,
                      (unsigned long long)overfull_chunks);
  out += StringPrintf("index table:       %s on backend, %s in memory\n",
                      HumanBytes(index_table_bytes).c_str(),
                      HumanBytes(projection_memory_bytes).c_str());
  out += StringPrintf("version span:      total %llu, avg %.1f, max %llu\n",
                      (unsigned long long)total_span, avg_span,
                      (unsigned long long)max_span);
  out += "span histogram:    ";
  for (size_t i = 0; i < span_histogram.size(); ++i) {
    if (span_histogram[i] == 0) continue;
    out += StringPrintf("[%s]=%llu ", kBucketLabels[i],
                        (unsigned long long)span_histogram[i]);
  }
  out += "\n";
  for (const LayerCounters& layer : layers) {
    out += StringPrintf("%-18s ", (layer.layer + ":").c_str());
    for (size_t i = 0; i < layer.counters.size(); ++i) {
      out += StringPrintf("%s%s=%llu", i == 0 ? "" : " ",
                          layer.counters[i].first.c_str(),
                          (unsigned long long)layer.counters[i].second);
    }
    out += "\n";
  }
  return out;
}

}  // namespace rstore
