#ifndef RSTORE_CORE_PARTITIONER_H_
#define RSTORE_CORE_PARTITIONER_H_

#include <memory>

#include "common/result.h"
#include "core/placement.h"

namespace rstore {

/// Everything a partitioning algorithm sees: the (merge-free) version tree
/// and the placement items (sub-chunks). All pointers must outlive the call.
struct PartitionInput {
  const VersionedDataset* dataset = nullptr;  // must be a tree
  const std::vector<PlacementItem>* items = nullptr;
  Options options;
};

/// Interface for the record-to-chunk partitioning algorithms (paper §3).
/// Implementations are stateless across calls and deterministic given
/// Options::seed.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual const char* name() const = 0;

  virtual Result<Partitioning> Partition(const PartitionInput& input) = 0;
};

/// Factory covering all algorithms and baselines of Options::algorithm.
std::unique_ptr<Partitioner> CreatePartitioner(PartitionAlgorithm algorithm);

}  // namespace rstore

#endif  // RSTORE_CORE_PARTITIONER_H_
