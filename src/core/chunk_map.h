#ifndef RSTORE_CORE_CHUNK_MAP_H_
#define RSTORE_CORE_CHUNK_MAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compress/bitmap.h"
#include "version/types.h"

namespace rstore {

/// The per-chunk slice M_Ci of the 3-D key/version/chunk mapping (paper
/// §2.4, Fig. 3): for every version that has records in this chunk, which of
/// the chunk's records belong to it.
///
/// Records are addressed by their index in the chunk's flattened record list
/// (all sub-chunk members in order); per-version membership is a compressed
/// bitmap over those indices ("the adjacency list in each chunk map file is
/// then converted to a bitmap, compressed and stored in the KVS", §3.1).
class ChunkMap {
 public:
  ChunkMap() = default;
  explicit ChunkMap(uint32_t record_count) : record_count_(record_count) {}

  uint32_t record_count() const { return record_count_; }

  /// Marks record `record_index` as belonging to `version`.
  void Add(VersionId version, uint32_t record_index);

  /// Versions with at least one record in this chunk.
  std::vector<VersionId> Versions() const;

  bool HasVersion(VersionId version) const {
    return bitmaps_.count(version) > 0;
  }

  /// Indices of this chunk's records that belong to `version` (empty if the
  /// version has none).
  std::vector<uint32_t> RecordsOf(VersionId version) const;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, ChunkMap* out);

  /// Approximate heap footprint (for cache charging): one fixed-size bitmap
  /// plus map-node overhead per version touching the chunk.
  uint64_t ApproximateMemoryBytes() const {
    uint64_t per_bitmap = (record_count_ + 63) / 64 * 8 + 64;
    return sizeof(ChunkMap) + bitmaps_.size() * per_bitmap;
  }

  bool operator==(const ChunkMap& other) const {
    return record_count_ == other.record_count_ && bitmaps_ == other.bitmaps_;
  }

 private:
  uint32_t record_count_ = 0;
  std::map<VersionId, Bitmap> bitmaps_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_CHUNK_MAP_H_
