#ifndef RSTORE_CORE_SUB_CHUNK_BUILDER_H_
#define RSTORE_CORE_SUB_CHUNK_BUILDER_H_

#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "core/placement.h"
#include "core/record.h"
#include "core/sub_chunk.h"
#include "version/dataset.h"

namespace rstore {

/// Output of sub-chunk construction: the encoded sub-chunks and, parallel to
/// them, the placement items the partitioning algorithms operate on
/// ("treating the sub-chunks as records", paper §3.4).
struct SubChunkBuildResult {
  std::vector<SubChunk> sub_chunks;
  std::vector<PlacementItem> items;

  uint64_t total_compressed_bytes() const;
  uint64_t total_uncompressed_bytes() const;
  /// uncompressed / compressed, the ratio reported in paper Fig. 10.
  double compression_ratio() const;
};

/// Groups records into sub-chunks of at most Options::max_sub_chunk_records
/// (k) records per primary key and encodes them (paper §2.5 Case 2 / §3.4 /
/// Algorithm 5).
///
/// Within a primary key, the record versions form a forest: record 〈K,Vc〉's
/// parent is the record 〈K,Vp〉 it superseded (the matching ∆⁻ entry of
/// version Vc's delta). Sub-chunks are connected subtrees of that forest —
/// enforcing the paper's constraint that grouped records "form a connected
/// subgraph of the version tree" — carved greedily bottom-up: child
/// components accumulate into their parent, the largest child component is
/// cut off whenever the accumulated size would exceed k, and a component
/// reaching exactly k is emitted immediately. Each non-head member is
/// delta-encoded against its record parent.
///
/// `dataset` must be a version tree. Every added composite key in the
/// dataset must have a payload in `payloads`.
Result<SubChunkBuildResult> BuildSubChunks(const VersionedDataset& dataset,
                                           const RecordPayloadMap& payloads,
                                           const RecordVersionMap& record_versions,
                                           const Options& options);

}  // namespace rstore

#endif  // RSTORE_CORE_SUB_CHUNK_BUILDER_H_
