#include "core/options.h"

namespace rstore {

const char* PartitionAlgorithmName(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kBottomUp:
      return "BOTTOM-UP";
    case PartitionAlgorithm::kShingle:
      return "SHINGLE";
    case PartitionAlgorithm::kDepthFirst:
      return "DEPTHFIRST";
    case PartitionAlgorithm::kBreadthFirst:
      return "BREADTHFIRST";
    case PartitionAlgorithm::kDeltaBaseline:
      return "DELTA";
    case PartitionAlgorithm::kSubChunkBaseline:
      return "SUBCHUNK";
    case PartitionAlgorithm::kSingleAddressSpace:
      return "SINGLE-ADDRESS";
  }
  return "UNKNOWN";
}

}  // namespace rstore
