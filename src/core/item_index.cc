#include "core/item_index.h"

#include <algorithm>

namespace rstore {

ItemIndex ItemIndex::Build(const VersionGraph& graph,
                           const std::vector<PlacementItem>& items) {
  ItemIndex index;
  index.added.resize(graph.size());
  index.removed.resize(graph.size());
  index.leaf_items.resize(graph.size());
  for (uint32_t i = 0; i < items.size(); ++i) {
    const std::vector<VersionId>& versions = items[i].versions;
    auto present = [&](VersionId v) {
      return std::binary_search(versions.begin(), versions.end(), v);
    };
    for (VersionId v : versions) {
      VersionId parent = graph.PrimaryParent(v);
      if (parent == kInvalidVersion || !present(parent)) {
        index.added[v].push_back(i);
      }
      for (VersionId child : graph.children(v)) {
        if (!present(child)) index.removed[child].push_back(i);
      }
      if (graph.IsLeaf(v)) index.leaf_items[v].push_back(i);
    }
  }
  return index;
}

}  // namespace rstore
