#include "core/partitioner.h"

#include "core/baseline_partitioner.h"
#include "core/bottom_up_partitioner.h"
#include "core/shingle_partitioner.h"
#include "core/traversal_partitioner.h"

namespace rstore {

std::unique_ptr<Partitioner> CreatePartitioner(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kBottomUp:
      return std::make_unique<BottomUpPartitioner>();
    case PartitionAlgorithm::kShingle:
      return std::make_unique<ShinglePartitioner>();
    case PartitionAlgorithm::kDepthFirst:
      return std::make_unique<TraversalPartitioner>(
          TraversalPartitioner::Order::kDepthFirst);
    case PartitionAlgorithm::kBreadthFirst:
      return std::make_unique<TraversalPartitioner>(
          TraversalPartitioner::Order::kBreadthFirst);
    case PartitionAlgorithm::kDeltaBaseline:
      return std::make_unique<DeltaBaselinePartitioner>();
    case PartitionAlgorithm::kSubChunkBaseline:
      return std::make_unique<SubChunkBaselinePartitioner>();
    case PartitionAlgorithm::kSingleAddressSpace:
      return std::make_unique<SingleAddressPartitioner>();
  }
  return nullptr;
}

}  // namespace rstore
