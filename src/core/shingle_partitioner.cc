#include "core/shingle_partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/hash.h"

namespace rstore {

Result<Partitioning> ShinglePartitioner::Partition(
    const PartitionInput& input) {
  const std::vector<PlacementItem>& items = *input.items;
  const uint32_t l = std::max<uint32_t>(1, input.options.shingle_count);
  HashFamily family(l, input.options.seed);

  // Algorithm 1: shingles[i] = (min_v h_1(v), ..., min_v h_l(v)).
  std::vector<std::vector<uint64_t>> shingles(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    shingles[i].resize(l, UINT64_MAX);
    for (VersionId v : items[i].versions) {
      for (uint32_t f = 0; f < l; ++f) {
        shingles[i][f] = std::min(shingles[i][f], family.Apply(f, v + 1));
      }
    }
  }

  // Algorithm 2: lexicographic sort by shingle vector; items with similar
  // version sets collide on early min-hashes and end up adjacent. Item id as
  // tiebreak keeps the result deterministic.
  std::vector<uint32_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (shingles[a] != shingles[b]) return shingles[a] < shingles[b];
    return items[a].id < items[b].id;
  });

  ChunkPacker packer(input.options.chunk_capacity_bytes,
                     input.options.chunk_overflow_fraction);
  for (uint32_t i : order) packer.Add(i, items[i].bytes);
  return packer.Finish(/*merge_partials=*/false);
}

}  // namespace rstore
