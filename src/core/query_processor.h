#ifndef RSTORE_CORE_QUERY_PROCESSOR_H_
#define RSTORE_CORE_QUERY_PROCESSOR_H_

#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/chunk_cache.h"
#include "core/options.h"
#include "core/placement.h"
#include "core/record.h"
#include "core/store_catalog.h"
#include "kvstore/kv_store.h"
#include "version/dataset.h"

namespace rstore {

/// Per-query cost accounting: the number of chunks retrieved is the span
/// (paper §2.5, "the key performance metric"); simulated_micros is the
/// modeled backend latency the query incurred. With a chunk cache on the
/// read path, bytes_fetched/simulated_micros only reflect traffic that
/// actually reached the backend (misses), while chunks_fetched stays the
/// span — so cache_hits + cache_misses == chunks_fetched whenever a cache
/// is attached.
///
/// Counters are registered once in kQueryStatsFields below; aggregation
/// (operator+=) and generic reporting iterate that table, so adding a new
/// per-layer counter is a one-line change that no existing caller sees.
struct QueryStats {
  uint64_t chunks_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t simulated_micros = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Chunks a best-effort query could not fetch (always 0 in strict mode,
  /// where an unfetchable chunk is an error instead).
  uint64_t missing_chunks = 0;

  // Latency attribution: a decomposition of simulated_micros mirroring
  // KVStats. The conservation invariant
  //   queue_wait_us + service_us + retry_penalty_us - hedge_delta_us
  //     == simulated_micros
  // holds exactly for every query (all four stay zero against backends
  // that charge nothing, where simulated_micros is zero too).
  uint64_t queue_wait_us = 0;
  uint64_t service_us = 0;
  uint64_t retry_penalty_us = 0;
  uint64_t hedge_delta_us = 0;

  struct Field {
    const char* name;
    uint64_t QueryStats::* member;
  };

  inline QueryStats& operator+=(const QueryStats& other);
};

/// The counter registry: every QueryStats counter, exactly once.
inline constexpr QueryStats::Field kQueryStatsFields[] = {
    {"chunks_fetched", &QueryStats::chunks_fetched},
    {"bytes_fetched", &QueryStats::bytes_fetched},
    {"simulated_micros", &QueryStats::simulated_micros},
    {"cache_hits", &QueryStats::cache_hits},
    {"cache_misses", &QueryStats::cache_misses},
    {"missing_chunks", &QueryStats::missing_chunks},
    {"queue_wait_us", &QueryStats::queue_wait_us},
    {"service_us", &QueryStats::service_us},
    {"retry_penalty_us", &QueryStats::retry_penalty_us},
    {"hedge_delta_us", &QueryStats::hedge_delta_us},
};

/// Every QueryStats field is a uint64_t, so the struct's size is exactly one
/// table entry per field; this trips the moment someone adds a field without
/// registering it (and aggregation/reporting would silently drop it).
static_assert(sizeof(QueryStats) ==
                  std::size(kQueryStatsFields) * sizeof(uint64_t),
              "QueryStats field added without a kQueryStatsFields entry");

inline QueryStats& QueryStats::operator+=(const QueryStats& other) {
  for (const Field& field : kQueryStatsFields) {
    this->*field.member += other.*field.member;
  }
  return *this;
}

/// What a best-effort query could not serve: the chunks whose body or map
/// fetch failed, with the backend's reasons. An empty report means the
/// result is complete (byte-identical to a strict run).
struct QueryDegradation {
  std::vector<ChunkId> missing_chunks;
  /// One human-readable reason per missing chunk, index-aligned.
  std::vector<std::string> messages;

  bool degraded() const { return !missing_chunks.empty(); }
};

/// Completion payload of an asynchronous record-set query (GetVersionAsync /
/// GetRangeAsync / GetHistoryAsync). The per-query cost accounting rides in
/// the result — differencing a shared QueryStats is meaningless while many
/// queries are in flight — and `records` is byte-identical to what the
/// synchronous twin would have returned.
struct AsyncQueryResult {
  Status status = Status::OK();
  std::vector<Record> records;
  QueryStats stats;
  /// Best-effort casualties (empty in strict mode or when nothing degraded).
  QueryDegradation degradation;
};

/// Completion payload of an asynchronous point query (GetRecordAsync).
struct AsyncRecordResult {
  Status status = Status::OK();
  Record record;
  QueryStats stats;
};

/// Executes the four retrieval query classes of paper §2.1 against the
/// chunked store (paper §2.4, "Indexes and Query Processing Module").
///
/// - Version retrieval: version->chunks projection, parallel chunk fetch,
///   chunk maps extract the members.
/// - Record evolution: same flow with the key->chunks projection.
/// - Range / record retrieval: "index-ANDing" of both projections; because
///   the projections are lossy, a fetched chunk may turn out to hold no
///   record of interest.
///
/// The DELTA and SUBCHUNK baseline layouts use their own retrieval rules
/// (chain replay / full scan) selected by the layout kind.
///
/// When a ChunkCache is attached, every chunk fetch consults it first (keyed
/// by the chunk's current map generation from the catalog, so entries with
/// rewritten maps are never served) and decoded chunks are inserted after a
/// backend fetch. Multiple QueryProcessors — including ones on different
/// threads — may share one cache; `cache_owner` namespaces their entries
/// per owning store.
class QueryProcessor {
 public:
  /// All pointers are borrowed and must outlive the processor. `dataset` is
  /// the tree-transformed dataset whose composite keys match the stored
  /// chunks. `cache` may be null (uncached reads, the default).
  QueryProcessor(KVStore* kvs, const StoreCatalog* catalog,
                 const VersionedDataset* dataset, LayoutKind layout,
                 const Options& options, ChunkCache* cache = nullptr,
                 uint64_t cache_owner = 0);

  /// Q1 — full version retrieval: every record of `version`.
  ///
  /// All four query methods accept an optional TraceContext: when non-null,
  /// the query records a span tree ("query.*" around the whole query,
  /// "query.fetch_chunks" / "cache.lookup" / "query.decode" around the read
  /// path, plus the backend's own "kvs.multiget" spans) stamped with both
  /// wall-clock and simulated time.
  /// GetVersion and GetRange also honor Options::read_mode: under
  /// ReadMode::kBestEffort, chunks the backend cannot serve are skipped and
  /// reported via `degradation` (when non-null) and the missing_chunks stat
  /// instead of failing the query. In strict mode `degradation` is ignored.
  Result<std::vector<Record>> GetVersion(VersionId version,
                                         QueryStats* stats = nullptr,
                                         TraceContext* trace = nullptr,
                                         QueryDegradation* degradation =
                                             nullptr);

  /// Q2 — range retrieval: records of `version` with key in
  /// [key_lo, key_hi] (inclusive).
  Result<std::vector<Record>> GetRange(VersionId version,
                                       const std::string& key_lo,
                                       const std::string& key_hi,
                                       QueryStats* stats = nullptr,
                                       TraceContext* trace = nullptr,
                                       QueryDegradation* degradation =
                                           nullptr);

  /// Q3 — record evolution: every record (across all versions) with the
  /// given primary key, sorted by origin version.
  Result<std::vector<Record>> GetHistory(const std::string& key,
                                         QueryStats* stats = nullptr,
                                         TraceContext* trace = nullptr);

  /// Point query: the record with `key` as visible in `version`.
  /// kNotFound if the version has no such key.
  Result<Record> GetRecord(const std::string& key, VersionId version,
                           QueryStats* stats = nullptr,
                           TraceContext* trace = nullptr);

  // -- Asynchronous twins: continuation-style execution on a deterministic
  //    virtual-time Executor, so many queries pipeline through one
  //    coordinator (the backend's per-node queues are the shared resource).
  //    Each method validates and plans inline, submits its chunk fetches,
  //    and completes the returned future at the query's simulated completion
  //    instant with results byte-identical to the synchronous twin. A
  //    sequentially-drained executor (RunUntilIdle after each submission)
  //    replays the synchronous timeline exactly — same backend ticks, same
  //    charges, same counters.
  //
  //    `trace`, when non-null, must be a context used by this query chain
  //    only (one TraceContext per in-flight query) and stays open until the
  //    future completes. Best-effort degradation rides in the result; the
  //    processor itself must outlive the future (RStore's wrappers pin it).
  Future<AsyncQueryResult> GetVersionAsync(Executor* executor,
                                           VersionId version,
                                           TraceContext* trace = nullptr);
  Future<AsyncQueryResult> GetRangeAsync(Executor* executor, VersionId version,
                                         const std::string& key_lo,
                                         const std::string& key_hi,
                                         TraceContext* trace = nullptr);
  Future<AsyncQueryResult> GetHistoryAsync(Executor* executor,
                                           const std::string& key,
                                           TraceContext* trace = nullptr);
  Future<AsyncRecordResult> GetRecordAsync(Executor* executor,
                                           const std::string& key,
                                           VersionId version,
                                           TraceContext* trace = nullptr);

 private:
  /// A decoded chunk on the read path: cached entries are shared with the
  /// cache (and other readers), uncached ones are exclusively owned.
  using ChunkRef = std::shared_ptr<const Chunk>;

  /// Work-in-progress state of one chunk fetch, shared between the
  /// synchronous and asynchronous paths: the cache pass's outcome plus the
  /// backend keys still to be fetched.
  struct FetchPlan {
    /// Resolved chunks, index-aligned with the requested ids; entries not
    /// served by the cache are filled in by DecodeAndInsert.
    std::vector<ChunkRef> chunks;
    std::vector<ChunkCacheKey> cache_keys;  // empty when no cache attached
    std::vector<size_t> miss;  // indices into `ids` needing a backend fetch
    std::vector<std::string> chunk_keys;  // backend keys, aligned with miss
    std::vector<std::string> map_keys;
  };

  /// Cache pass + backend-key planning: resolves each id against the cache
  /// under its current map generation (entries decoded before a map rewrite
  /// can never be served) and builds the body/map keys for the misses.
  FetchPlan PrepareFetch(const std::vector<ChunkId>& ids, TraceContext* trace);

  /// Decodes fetched bodies + maps into plan->chunks and inserts them into
  /// the cache. With `degradation` non-null, keys in the failure lists
  /// leave null refs and a report entry (best-effort); otherwise any
  /// unserved chunk is an error.
  Status DecodeAndInsert(const std::vector<ChunkId>& ids, FetchPlan* plan,
                         const std::map<std::string, std::string>& chunk_values,
                         const std::map<std::string, std::string>& map_values,
                         const std::vector<KeyReadFailure>& chunk_failures,
                         const std::vector<KeyReadFailure>& map_failures,
                         TraceContext* trace, QueryDegradation* degradation);

  /// Stats/metrics epilogue shared by both fetch paths (`bytes`/`micros`
  /// are what this fetch's backend traffic cost; `queue_us`/`service_us`/
  /// `retry_us`/`hedge_us` its attribution, summing to `micros`). Returns
  /// the number of null refs (best-effort casualties) for span annotation.
  uint64_t AccountFetch(const std::vector<ChunkId>& ids, const FetchPlan& plan,
                        uint64_t bytes, uint64_t micros, uint64_t queue_us,
                        uint64_t service_us, uint64_t retry_us,
                        uint64_t hedge_us, QueryStats* stats);

  /// Fetches and decodes chunks (bodies + their maps) by id, consulting the
  /// cache first when attached, accounting stats. With `degradation`
  /// non-null the fetch is best-effort: chunks the backend reports
  /// unavailable come back as null ChunkRefs (recorded in the report)
  /// rather than failing the call; with it null, any unserved chunk is an
  /// error (strict).
  Result<std::vector<ChunkRef>> FetchChunks(const std::vector<ChunkId>& ids,
                                            QueryStats* stats,
                                            TraceContext* trace,
                                            QueryDegradation* degradation =
                                                nullptr);

  /// Completion payload of FetchChunksAsync: the chunks plus this fetch's
  /// own accounting and (best-effort mode) degradation report.
  struct AsyncFetchOutcome {
    Status status = Status::OK();
    std::vector<ChunkRef> chunks;
    QueryStats stats;
    QueryDegradation degradation;
  };

  /// Continuation state of one in-flight asynchronous fetch. Heap-held so
  /// the chunk-table continuation can hand off to the index-table one.
  struct AsyncFetchState {
    Executor* executor = nullptr;
    std::vector<ChunkId> ids;
    TraceContext* trace = nullptr;
    bool best_effort = false;
    uint32_t fetch_span = TraceSpan::kNoParent;
    FetchPlan plan;
    AsyncMultiGetResult chunk_result;
    AsyncFetchOutcome out;
    Promise<AsyncFetchOutcome> promise;
  };
  using FetchStatePtr = std::shared_ptr<AsyncFetchState>;

  /// The asynchronous twin of FetchChunks: submits the body batch, chains
  /// the map batch at its simulated completion instant (exactly the sync
  /// path's sequencing, which also keeps trace spans LIFO), then decodes
  /// and accounts in the final continuation. Strict failures complete the
  /// future with the error and charge nothing further, like the sync early
  /// return.
  Future<AsyncFetchOutcome> FetchChunksAsync(Executor* executor,
                                             std::vector<ChunkId> ids,
                                             TraceContext* trace,
                                             bool best_effort);

  /// Decode/account epilogue of an async fetch, run when the map batch
  /// completes.
  void FinishFetchAsync(const FetchStatePtr& state,
                        const AsyncMultiGetResult& map_result);
  /// Completes an async fetch with `error`, closing its span (no charge).
  void AbortFetchAsync(const FetchStatePtr& state, const Status& error);

  /// Extracts the records of `version` from fetched chunks via chunk maps,
  /// optionally restricted to [key_lo, key_hi]. Null chunk refs (best-effort
  /// fetch casualties) are skipped.
  Result<std::vector<Record>> ExtractVersionRecords(
      const std::vector<ChunkRef>& chunks, VersionId version, bool use_range,
      const std::string& key_lo, const std::string& key_hi) const;

  Result<std::vector<Record>> GetVersionDeltaChain(VersionId version,
                                                   bool use_range,
                                                   const std::string& key_lo,
                                                   const std::string& key_hi,
                                                   QueryStats* stats,
                                                   TraceContext* trace);

  // -- Layout-specific planning/epilogue helpers shared by the synchronous
  //    and asynchronous paths. Planning (which chunk ids to fetch) runs
  //    before the fetch; epilogues turn fetched chunks into records after.

  /// Every delta object on root->version, deduplicated (DELTA layout).
  std::vector<ChunkId> DeltaChainIds(VersionId version) const;
  /// Chunk ids whose records intersect [key_lo, key_hi] for `version`
  /// (index-ANDing for kChunked, per-key chunks for kSubChunkPerKey).
  std::vector<ChunkId> RangeChunkIds(VersionId version,
                                     const std::string& key_lo,
                                     const std::string& key_hi) const;
  /// Replays a fetched delta chain and materializes `version`'s records
  /// (optionally range-restricted) — the DELTA retrieval epilogue.
  Result<std::vector<Record>> ReplayDeltaChain(
      const std::vector<ChunkRef>& chunks, VersionId version, bool use_range,
      const std::string& key_lo, const std::string& key_hi) const;
  /// Record-evolution epilogue: all records with `key` across versions,
  /// sorted by origin version (replays everything under DELTA).
  Result<std::vector<Record>> HistoryFromChunks(
      const std::vector<ChunkRef>& chunks, const std::string& key) const;
  /// Point-query epilogue: scans fetched chunks for `key` in `version`.
  Result<Record> RecordFromChunks(const std::vector<ChunkRef>& chunks,
                                  const std::string& key,
                                  VersionId version) const;

  KVStore* kvs_;
  const StoreCatalog* catalog_;
  const VersionedDataset* dataset_;
  LayoutKind layout_;
  Options options_;
  ChunkCache* cache_;
  uint64_t cache_owner_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_QUERY_PROCESSOR_H_
