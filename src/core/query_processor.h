#ifndef RSTORE_CORE_QUERY_PROCESSOR_H_
#define RSTORE_CORE_QUERY_PROCESSOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "core/placement.h"
#include "core/record.h"
#include "core/store_catalog.h"
#include "kvstore/kv_store.h"
#include "version/dataset.h"

namespace rstore {

/// Per-query cost accounting: the number of chunks retrieved is the span
/// (paper §2.5, "the key performance metric"); simulated_micros is the
/// modeled backend latency the query incurred.
struct QueryStats {
  uint64_t chunks_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t simulated_micros = 0;

  QueryStats& operator+=(const QueryStats& other) {
    chunks_fetched += other.chunks_fetched;
    bytes_fetched += other.bytes_fetched;
    simulated_micros += other.simulated_micros;
    return *this;
  }
};

/// Executes the four retrieval query classes of paper §2.1 against the
/// chunked store (paper §2.4, "Indexes and Query Processing Module").
///
/// - Version retrieval: version->chunks projection, parallel chunk fetch,
///   chunk maps extract the members.
/// - Record evolution: same flow with the key->chunks projection.
/// - Range / record retrieval: "index-ANDing" of both projections; because
///   the projections are lossy, a fetched chunk may turn out to hold no
///   record of interest.
///
/// The DELTA and SUBCHUNK baseline layouts use their own retrieval rules
/// (chain replay / full scan) selected by the layout kind.
class QueryProcessor {
 public:
  /// All pointers are borrowed and must outlive the processor. `dataset` is
  /// the tree-transformed dataset whose composite keys match the stored
  /// chunks.
  QueryProcessor(KVStore* kvs, const StoreCatalog* catalog,
                 const VersionedDataset* dataset, LayoutKind layout,
                 const Options& options);

  /// Q1 — full version retrieval: every record of `version`.
  Result<std::vector<Record>> GetVersion(VersionId version,
                                         QueryStats* stats = nullptr);

  /// Q2 — range retrieval: records of `version` with key in
  /// [key_lo, key_hi] (inclusive).
  Result<std::vector<Record>> GetRange(VersionId version,
                                       const std::string& key_lo,
                                       const std::string& key_hi,
                                       QueryStats* stats = nullptr);

  /// Q3 — record evolution: every record (across all versions) with the
  /// given primary key, sorted by origin version.
  Result<std::vector<Record>> GetHistory(const std::string& key,
                                         QueryStats* stats = nullptr);

  /// Point query: the record with `key` as visible in `version`.
  /// kNotFound if the version has no such key.
  Result<Record> GetRecord(const std::string& key, VersionId version,
                           QueryStats* stats = nullptr);

 private:
  /// Fetches and decodes chunks (bodies + their maps) by id, accounting
  /// stats.
  Result<std::vector<Chunk>> FetchChunks(const std::vector<ChunkId>& ids,
                                         QueryStats* stats);

  /// Extracts the records of `version` from fetched chunks via chunk maps,
  /// optionally restricted to [key_lo, key_hi].
  Result<std::vector<Record>> ExtractVersionRecords(
      const std::vector<Chunk>& chunks, VersionId version, bool use_range,
      const std::string& key_lo, const std::string& key_hi) const;

  Result<std::vector<Record>> GetVersionDeltaChain(VersionId version,
                                                   bool use_range,
                                                   const std::string& key_lo,
                                                   const std::string& key_hi,
                                                   QueryStats* stats);

  KVStore* kvs_;
  const StoreCatalog* catalog_;
  const VersionedDataset* dataset_;
  LayoutKind layout_;
  Options options_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_QUERY_PROCESSOR_H_
