#ifndef RSTORE_CORE_QUERY_PROCESSOR_H_
#define RSTORE_CORE_QUERY_PROCESSOR_H_

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/chunk_cache.h"
#include "core/options.h"
#include "core/placement.h"
#include "core/record.h"
#include "core/store_catalog.h"
#include "kvstore/kv_store.h"
#include "version/dataset.h"

namespace rstore {

/// Per-query cost accounting: the number of chunks retrieved is the span
/// (paper §2.5, "the key performance metric"); simulated_micros is the
/// modeled backend latency the query incurred. With a chunk cache on the
/// read path, bytes_fetched/simulated_micros only reflect traffic that
/// actually reached the backend (misses), while chunks_fetched stays the
/// span — so cache_hits + cache_misses == chunks_fetched whenever a cache
/// is attached.
///
/// Counters are registered once in kQueryStatsFields below; aggregation
/// (operator+=) and generic reporting iterate that table, so adding a new
/// per-layer counter is a one-line change that no existing caller sees.
struct QueryStats {
  uint64_t chunks_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t simulated_micros = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Chunks a best-effort query could not fetch (always 0 in strict mode,
  /// where an unfetchable chunk is an error instead).
  uint64_t missing_chunks = 0;

  struct Field {
    const char* name;
    uint64_t QueryStats::* member;
  };

  inline QueryStats& operator+=(const QueryStats& other);
};

/// The counter registry: every QueryStats counter, exactly once.
inline constexpr QueryStats::Field kQueryStatsFields[] = {
    {"chunks_fetched", &QueryStats::chunks_fetched},
    {"bytes_fetched", &QueryStats::bytes_fetched},
    {"simulated_micros", &QueryStats::simulated_micros},
    {"cache_hits", &QueryStats::cache_hits},
    {"cache_misses", &QueryStats::cache_misses},
    {"missing_chunks", &QueryStats::missing_chunks},
};

/// Every QueryStats field is a uint64_t, so the struct's size is exactly one
/// table entry per field; this trips the moment someone adds a field without
/// registering it (and aggregation/reporting would silently drop it).
static_assert(sizeof(QueryStats) ==
                  std::size(kQueryStatsFields) * sizeof(uint64_t),
              "QueryStats field added without a kQueryStatsFields entry");

inline QueryStats& QueryStats::operator+=(const QueryStats& other) {
  for (const Field& field : kQueryStatsFields) {
    this->*field.member += other.*field.member;
  }
  return *this;
}

/// What a best-effort query could not serve: the chunks whose body or map
/// fetch failed, with the backend's reasons. An empty report means the
/// result is complete (byte-identical to a strict run).
struct QueryDegradation {
  std::vector<ChunkId> missing_chunks;
  /// One human-readable reason per missing chunk, index-aligned.
  std::vector<std::string> messages;

  bool degraded() const { return !missing_chunks.empty(); }
};

/// Executes the four retrieval query classes of paper §2.1 against the
/// chunked store (paper §2.4, "Indexes and Query Processing Module").
///
/// - Version retrieval: version->chunks projection, parallel chunk fetch,
///   chunk maps extract the members.
/// - Record evolution: same flow with the key->chunks projection.
/// - Range / record retrieval: "index-ANDing" of both projections; because
///   the projections are lossy, a fetched chunk may turn out to hold no
///   record of interest.
///
/// The DELTA and SUBCHUNK baseline layouts use their own retrieval rules
/// (chain replay / full scan) selected by the layout kind.
///
/// When a ChunkCache is attached, every chunk fetch consults it first (keyed
/// by the chunk's current map generation from the catalog, so entries with
/// rewritten maps are never served) and decoded chunks are inserted after a
/// backend fetch. Multiple QueryProcessors — including ones on different
/// threads — may share one cache; `cache_owner` namespaces their entries
/// per owning store.
class QueryProcessor {
 public:
  /// All pointers are borrowed and must outlive the processor. `dataset` is
  /// the tree-transformed dataset whose composite keys match the stored
  /// chunks. `cache` may be null (uncached reads, the default).
  QueryProcessor(KVStore* kvs, const StoreCatalog* catalog,
                 const VersionedDataset* dataset, LayoutKind layout,
                 const Options& options, ChunkCache* cache = nullptr,
                 uint64_t cache_owner = 0);

  /// Q1 — full version retrieval: every record of `version`.
  ///
  /// All four query methods accept an optional TraceContext: when non-null,
  /// the query records a span tree ("query.*" around the whole query,
  /// "query.fetch_chunks" / "cache.lookup" / "query.decode" around the read
  /// path, plus the backend's own "kvs.multiget" spans) stamped with both
  /// wall-clock and simulated time.
  /// GetVersion and GetRange also honor Options::read_mode: under
  /// ReadMode::kBestEffort, chunks the backend cannot serve are skipped and
  /// reported via `degradation` (when non-null) and the missing_chunks stat
  /// instead of failing the query. In strict mode `degradation` is ignored.
  Result<std::vector<Record>> GetVersion(VersionId version,
                                         QueryStats* stats = nullptr,
                                         TraceContext* trace = nullptr,
                                         QueryDegradation* degradation =
                                             nullptr);

  /// Q2 — range retrieval: records of `version` with key in
  /// [key_lo, key_hi] (inclusive).
  Result<std::vector<Record>> GetRange(VersionId version,
                                       const std::string& key_lo,
                                       const std::string& key_hi,
                                       QueryStats* stats = nullptr,
                                       TraceContext* trace = nullptr,
                                       QueryDegradation* degradation =
                                           nullptr);

  /// Q3 — record evolution: every record (across all versions) with the
  /// given primary key, sorted by origin version.
  Result<std::vector<Record>> GetHistory(const std::string& key,
                                         QueryStats* stats = nullptr,
                                         TraceContext* trace = nullptr);

  /// Point query: the record with `key` as visible in `version`.
  /// kNotFound if the version has no such key.
  Result<Record> GetRecord(const std::string& key, VersionId version,
                           QueryStats* stats = nullptr,
                           TraceContext* trace = nullptr);

 private:
  /// A decoded chunk on the read path: cached entries are shared with the
  /// cache (and other readers), uncached ones are exclusively owned.
  using ChunkRef = std::shared_ptr<const Chunk>;

  /// Fetches and decodes chunks (bodies + their maps) by id, consulting the
  /// cache first when attached, accounting stats. With `degradation`
  /// non-null the fetch is best-effort: chunks the backend reports
  /// unavailable come back as null ChunkRefs (recorded in the report)
  /// rather than failing the call; with it null, any unserved chunk is an
  /// error (strict).
  Result<std::vector<ChunkRef>> FetchChunks(const std::vector<ChunkId>& ids,
                                            QueryStats* stats,
                                            TraceContext* trace,
                                            QueryDegradation* degradation =
                                                nullptr);

  /// Extracts the records of `version` from fetched chunks via chunk maps,
  /// optionally restricted to [key_lo, key_hi]. Null chunk refs (best-effort
  /// fetch casualties) are skipped.
  Result<std::vector<Record>> ExtractVersionRecords(
      const std::vector<ChunkRef>& chunks, VersionId version, bool use_range,
      const std::string& key_lo, const std::string& key_hi) const;

  Result<std::vector<Record>> GetVersionDeltaChain(VersionId version,
                                                   bool use_range,
                                                   const std::string& key_lo,
                                                   const std::string& key_hi,
                                                   QueryStats* stats,
                                                   TraceContext* trace);

  KVStore* kvs_;
  const StoreCatalog* catalog_;
  const VersionedDataset* dataset_;
  LayoutKind layout_;
  Options options_;
  ChunkCache* cache_;
  uint64_t cache_owner_;
};

}  // namespace rstore

#endif  // RSTORE_CORE_QUERY_PROCESSOR_H_
