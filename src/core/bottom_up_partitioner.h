#ifndef RSTORE_CORE_BOTTOM_UP_PARTITIONER_H_
#define RSTORE_CORE_BOTTOM_UP_PARTITIONER_H_

#include "core/partitioner.h"

namespace rstore {

/// BOTTOM-UP partitioning, paper §3.2 / Algorithm 3 — the paper's best
/// performer.
///
/// The version tree is processed in post-order. Every version v hands its
/// parent a collection π_v = [S¹_v, S²_v, ...] where Sʲ_v holds the items
/// present in v and in j-1 further consecutive descendant versions. The
/// collection is computed from the child collections with the delta
/// algebra of §3.2:
///
///   Sʲ⁺¹_v = Sʲ_c \ ∆⁺(c)          (items of the child also present in v)
///   S¹_v   = ∪_c ∆⁻(c)             (items of v absent from every child;
///                                   union approximation for general trees)
///
/// Items of a child collection that are NOT present in v (i.e. in ∆⁺(c))
/// are *exclusive to the subtree below v*: no version at or above v can
/// reference them, so they are chunked immediately — longest consecutive
/// runs first, starting a fresh chunk per version, with partial chunks
/// merged at the very end (§3.2). A hash-set guards against the duplicate
/// memberships the union approximation can produce on branched trees.
///
/// Options::subtree_limit implements β (§3.2.1): collections longer than β
/// sets are shrunk by merging the smallest set into its shorter-chain
/// neighbour, trading partitioning quality for per-version processing.
class BottomUpPartitioner : public Partitioner {
 public:
  const char* name() const override { return "BOTTOM-UP"; }
  Result<Partitioning> Partition(const PartitionInput& input) override;
};

}  // namespace rstore

#endif  // RSTORE_CORE_BOTTOM_UP_PARTITIONER_H_
