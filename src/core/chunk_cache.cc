#include "core/chunk_cache.h"

#include "common/logging.h"
#include "common/metrics.h"

namespace rstore {

namespace {

uint32_t RoundUpToPowerOfTwo(uint32_t n) {
  if (n == 0) return 1;
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Process-wide cache traffic counters (all shards, all caches). Updated
/// lock-free; registration happens once even though Lookup runs under a
/// shard lock (kLockRankMetrics sits below kLockRankChunkCache).
struct CacheMetrics {
  Counter* hits_total;
  Counter* misses_total;
  Counter* insertions_total;
  Counter* evictions_total;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Default();
      CacheMetrics m;
      m.hits_total = registry.GetCounter("rstore_cache_hits_total");
      m.misses_total = registry.GetCounter("rstore_cache_misses_total");
      m.insertions_total =
          registry.GetCounter("rstore_cache_insertions_total");
      m.evictions_total = registry.GetCounter("rstore_cache_evictions_total");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ChunkCache::ChunkCache(uint64_t capacity_bytes, uint32_t num_shards)
    : capacity_bytes_(capacity_bytes),
      num_shards_(RoundUpToPowerOfTwo(num_shards)) {
  RSTORE_CHECK(capacity_bytes_ > 0) << "chunk cache capacity must be > 0";
  shard_mask_ = num_shards_ - 1;
  shard_capacity_ = capacity_bytes_ / num_shards_;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

std::shared_ptr<const Chunk> ChunkCache::Lookup(const ChunkCacheKey& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    CacheMetrics::Get().misses_total->Increment();
    return nullptr;
  }
  ++shard.hits;
  CacheMetrics::Get().hits_total->Increment();
  // Promote to most-recently-used.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->chunk;
}

void ChunkCache::EvictToFit(Shard& shard, uint64_t incoming) {
  while (!shard.lru.empty() &&
         shard.charged + incoming > shard_capacity_) {
    Entry& victim = shard.lru.back();
    RSTORE_DCHECK(shard.charged >= victim.charge);
    shard.charged -= victim.charge;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    CacheMetrics::Get().evictions_total->Increment();
  }
}

void ChunkCache::Insert(const ChunkCacheKey& key,
                        std::shared_ptr<const Chunk> chunk, uint64_t charge) {
  if (chunk == nullptr) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place: drop the old charge first so eviction below sees the
    // true occupancy, then refresh content and recency.
    RSTORE_DCHECK(shard.charged >= it->second->charge);
    shard.charged -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  if (charge > shard_capacity_) {
    ++shard.rejected;
    return;
  }
  EvictToFit(shard, charge);
  shard.lru.push_front(Entry{key, std::move(chunk), charge});
  shard.index.emplace(key, shard.lru.begin());
  shard.charged += charge;
  ++shard.insertions;
  CacheMetrics::Get().insertions_total->Increment();
  RSTORE_DCHECK(shard.charged <= shard_capacity_);
  RSTORE_DCHECK(shard.index.size() == shard.lru.size());
}

void ChunkCache::Erase(const ChunkCacheKey& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  RSTORE_DCHECK(shard.charged >= it->second->charge);
  shard.charged -= it->second->charge;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void ChunkCache::Clear() {
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.charged = 0;
  }
}

ChunkCacheStats ChunkCache::stats() const {
  ChunkCacheStats out;
  out.capacity_bytes = capacity_bytes_;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.rejected_inserts += shard.rejected;
    out.entries += shard.lru.size();
    out.charged_bytes += shard.charged;
  }
  return out;
}

Status ChunkCache::Validate() const {
  for (uint32_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(shard.mu);
    if (shard.index.size() != shard.lru.size()) {
      return Status::Corruption("chunk cache shard " + std::to_string(s) +
                                ": index/LRU size mismatch");
    }
    uint64_t charged = 0;
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      auto idx = shard.index.find(it->key);
      if (idx == shard.index.end() || idx->second != it) {
        return Status::Corruption(
            "chunk cache shard " + std::to_string(s) +
            ": LRU entry not indexed (or indexed to another node)");
      }
      if (it->chunk == nullptr) {
        return Status::Corruption("chunk cache shard " + std::to_string(s) +
                                  ": null chunk resident");
      }
      charged += it->charge;
    }
    if (charged != shard.charged) {
      return Status::Corruption("chunk cache shard " + std::to_string(s) +
                                ": charge accounting drifted");
    }
    if (shard.charged > shard_capacity_) {
      return Status::Corruption("chunk cache shard " + std::to_string(s) +
                                ": over budget");
    }
  }
  return Status::OK();
}

}  // namespace rstore
