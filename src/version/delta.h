#ifndef RSTORE_VERSION_DELTA_H_
#define RSTORE_VERSION_DELTA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "version/types.h"

namespace rstore {

/// The membership change from a version to its (primary) parent.
///
/// Following paper §3.2: a delta ∆ between versions Vp and Vc splits into a
/// positive set ∆⁺ (records present in Vc but not Vp — freshly inserted
/// records and the new versions of updated records) and a negative set ∆⁻
/// (records present in Vp but not Vc — deleted records and the superseded
/// versions of updated records). The delta is *symmetric*: it derives Vc
/// from Vp and Vp from Vc. A consistent delta has ∆⁺ ∩ ∆⁻ = ∅.
///
/// Deltas carry membership only; record payloads travel separately (they are
/// needed once at ingest, not during partitioning).
struct VersionDelta {
  /// ∆⁺: composite keys added relative to the parent. Their version
  /// component equals the child version (records originate here).
  std::vector<CompositeKey> added;
  /// ∆⁻: composite keys removed relative to the parent. Their version
  /// component is wherever those records originated.
  std::vector<CompositeKey> removed;

  bool empty() const { return added.empty() && removed.empty(); }

  /// Verifies ∆⁺ ∩ ∆⁻ = ∅ ("we require the deltas to be consistent",
  /// paper §3.2, citing Heraclitus [20]).
  Status CheckConsistent() const;

  /// The symmetric inverse: swaps ∆⁺ and ∆⁻.
  VersionDelta Inverse() const;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, VersionDelta* out);
};

}  // namespace rstore

#endif  // RSTORE_VERSION_DELTA_H_
