#include "version/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace rstore {

Status VersionedDataset::Validate() const {
  if (graph.size() != deltas.size()) {
    return Status::InvalidArgument("graph/delta count mismatch");
  }
  if (graph.empty()) return Status::OK();
  if (!deltas[0].removed.empty()) {
    return Status::InvalidArgument("root delta cannot remove records");
  }

  // DFS over the primary tree with a running membership set: checks every
  // delta against the actual parent membership in O(total membership).
  VersionMembership current;
  Status failure = Status::OK();

  // Iterative DFS with explicit apply/undo framing.
  struct Frame {
    VersionId v;
    size_t next_child = 0;
    bool entered = false;
  };
  std::vector<Frame> stack{{0, 0, false}};
  while (!stack.empty() && failure.ok()) {
    Frame& frame = stack.back();
    VersionId v = frame.v;
    if (!frame.entered) {
      frame.entered = true;
      const VersionDelta& delta = deltas[v];
      Status s = delta.CheckConsistent();
      if (!s.ok()) return s;
      for (const CompositeKey& ck : delta.removed) {
        if (!current.count(ck)) {
          return Status::InvalidArgument(
              "delta of V" + std::to_string(v) + " removes absent record " +
              ck.ToString());
        }
        current.erase(ck);
      }
      for (const CompositeKey& ck : delta.added) {
        // Native adds originate here; foreign (merge-arrival) adds must come
        // from an ancestor in the DAG.
        if (ck.version != v && !graph.IsAncestor(ck.version, v)) {
          return Status::InvalidArgument(
              "delta of V" + std::to_string(v) + " adds record " +
              ck.ToString() + " from a non-ancestor version");
        }
        if (!current.insert(ck).second) {
          return Status::InvalidArgument(
              "delta of V" + std::to_string(v) + " re-adds present record " +
              ck.ToString());
        }
      }
      // A version holds at most one record per primary key.
      std::unordered_map<std::string, int> keys;
      for (const CompositeKey& ck : delta.added) {
        if (++keys[ck.key] > 1) {
          return Status::InvalidArgument(
              "delta of V" + std::to_string(v) + " adds key " + ck.key +
              " twice");
        }
      }
    }
    // Descend into primary children only (the membership tree).
    const auto& children = graph.children(v);
    bool descended = false;
    while (frame.next_child < children.size()) {
      VersionId child = children[frame.next_child++];
      if (graph.PrimaryParent(child) == v) {
        stack.push_back({child, 0, false});
        descended = true;
        break;
      }
    }
    if (descended) continue;
    // Exit: undo the delta.
    const VersionDelta& delta = deltas[v];
    for (const CompositeKey& ck : delta.added) current.erase(ck);
    for (const CompositeKey& ck : delta.removed) current.insert(ck);
    stack.pop_back();
  }
  return failure;
}

VersionMembership VersionedDataset::MaterializeVersion(VersionId v) const {
  RSTORE_CHECK(v < graph.size());
  VersionMembership members;
  for (VersionId step : graph.PathFromRoot(v)) {
    const VersionDelta& delta = deltas[step];
    for (const CompositeKey& ck : delta.removed) members.erase(ck);
    for (const CompositeKey& ck : delta.added) members.insert(ck);
  }
  return members;
}

RecordVersionMap VersionedDataset::BuildRecordVersionMap() const {
  RecordVersionMap map;
  if (graph.empty()) return map;
  // DFS over the primary tree with a running set; on entering v, every
  // member of the running set belongs to v.
  VersionMembership current;
  struct Frame {
    VersionId v;
    size_t next_child = 0;
    bool entered = false;
  };
  std::vector<Frame> stack{{0, 0, false}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    VersionId v = frame.v;
    if (!frame.entered) {
      frame.entered = true;
      const VersionDelta& delta = deltas[v];
      for (const CompositeKey& ck : delta.removed) current.erase(ck);
      for (const CompositeKey& ck : delta.added) current.insert(ck);
      for (const CompositeKey& ck : current) map[ck].push_back(v);
    }
    const auto& children = graph.children(v);
    bool descended = false;
    while (frame.next_child < children.size()) {
      VersionId child = children[frame.next_child++];
      if (graph.PrimaryParent(child) == v) {
        stack.push_back({child, 0, false});
        descended = true;
        break;
      }
    }
    if (descended) continue;
    const VersionDelta& delta = deltas[v];
    for (const CompositeKey& ck : delta.added) current.erase(ck);
    for (const CompositeKey& ck : delta.removed) current.insert(ck);
    stack.pop_back();
  }
  // DFS visits children in increasing-id order from any node, but sibling
  // subtrees can interleave id ranges; sort each list.
  for (auto& [ck, versions] : map) {
    std::sort(versions.begin(), versions.end());
  }
  return map;
}

uint64_t VersionedDataset::CountDistinctRecords() const {
  uint64_t count = 0;
  for (const VersionDelta& delta : deltas) count += delta.added.size();
  return count;
}

uint64_t VersionedDataset::TotalMembership() const {
  // Membership of v = membership of parent - removed + added; accumulate
  // along the primary tree.
  if (graph.empty()) return 0;
  std::vector<uint64_t> size(graph.size(), 0);
  uint64_t total = 0;
  for (VersionId v = 0; v < graph.size(); ++v) {
    uint64_t parent_size =
        graph.PrimaryParent(v) == kInvalidVersion
            ? 0
            : size[graph.PrimaryParent(v)];
    size[v] = parent_size + deltas[v].added.size() - deltas[v].removed.size();
    total += size[v];
  }
  return total;
}

}  // namespace rstore
