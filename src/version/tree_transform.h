#ifndef RSTORE_VERSION_TREE_TRANSFORM_H_
#define RSTORE_VERSION_TREE_TRANSFORM_H_

#include <cstdint>
#include <unordered_map>

#include "version/dataset.h"

namespace rstore {

/// Result of converting a version DAG into a version tree (paper §2.5,
/// Fig. 4): the partitioning algorithms require merge-free trees.
struct TreeTransformResult {
  /// The tree-shaped dataset: every version keeps only its primary-parent
  /// edge, and every ∆⁺ key originates in its own version.
  VersionedDataset tree;
  /// Renamed composite key -> the original key it aliases. "There are
  /// records in V8 that arrived exclusively from V5 and V7 which are renamed
  /// to make them appear as newly inserted records." Empty if the input was
  /// already a tree.
  std::unordered_map<CompositeKey, CompositeKey, CompositeKeyHash> renames;
  uint64_t renamed_count = 0;
};

/// Converts `dataset` (possibly a DAG) to a version tree.
///
/// The retained parent is the primary (first) parent of each merge. A record
/// that a merge receives from a non-primary branch appears in the merge's
/// ∆⁺ under its original composite key; the transform renames it to
/// 〈key, merge-version〉 so it reads as a fresh insert, and rewrites any
/// later ∆⁻ references to it within the merge's subtree. The conversion is
/// used only for partitioning; callers keep the original graph for
/// provenance queries.
TreeTransformResult ConvertToTree(const VersionedDataset& dataset);

}  // namespace rstore

#endif  // RSTORE_VERSION_TREE_TRANSFORM_H_
