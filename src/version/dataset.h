#ifndef RSTORE_VERSION_DATASET_H_
#define RSTORE_VERSION_DATASET_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "version/delta.h"
#include "version/version_graph.h"

namespace rstore {

/// Membership set of one version: the composite keys of all records in it.
using VersionMembership =
    std::unordered_set<CompositeKey, CompositeKeyHash>;

/// Map from each distinct record to the (sorted) list of versions containing
/// it — the bipartite record/version graph of paper §2.5, and the input the
/// shingle partitioner min-hashes.
using RecordVersionMap =
    std::unordered_map<CompositeKey, std::vector<VersionId>, CompositeKeyHash>;

/// A version graph plus per-version membership deltas: the structural view
/// of a versioned collection (record payloads live in the storage layer).
///
/// deltas[v] is expressed against v's *primary* parent; deltas[0].added
/// holds the root version's full record set. Membership of any version is
/// therefore determined by the primary-parent chain alone; merge edges add
/// provenance, and records arriving from non-primary parents appear in the
/// merge's ∆⁺ under their original composite keys (until the tree transform
/// renames them, see tree_transform.h).
struct VersionedDataset {
  VersionGraph graph;
  std::vector<VersionDelta> deltas;

  /// Structural sanity: one delta per version; deltas consistent; every
  /// native ∆⁺ key originates in its version or is a foreign (merge) key
  /// from an ancestor branch; every ∆⁻ key is actually present in the
  /// parent. O(total membership), intended for tests and ingest validation.
  Status Validate() const;

  /// The full record set of version `v`, by walking root -> v and applying
  /// deltas. O(path length * delta size).
  VersionMembership MaterializeVersion(VersionId v) const;

  /// Record -> sorted list of versions that contain it, for all records.
  /// Built with one DFS over the primary tree maintaining a running set,
  /// O(total membership) overall.
  RecordVersionMap BuildRecordVersionMap() const;

  /// Number of distinct records across all versions.
  uint64_t CountDistinctRecords() const;

  /// Sum over versions of their record counts (the "total size" column of
  /// paper Table 2, in records rather than bytes).
  uint64_t TotalMembership() const;
};

}  // namespace rstore

#endif  // RSTORE_VERSION_DATASET_H_
