#ifndef RSTORE_VERSION_VERSION_GRAPH_H_
#define RSTORE_VERSION_VERSION_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "version/types.h"

namespace rstore {

/// The directed graph of version derivations (paper §2.1, Fig. 1).
///
/// Versions are dense ids 0..size()-1 assigned in commit order; version 0 is
/// the single root, and every parent id is smaller than its child's — commit
/// order is a topological order by construction. A version with multiple
/// parents is a merge (the graph is a DAG); a graph with no merges is a
/// *version tree*, which is what the partitioning algorithms operate on
/// (paper §2.5 converts DAGs to trees first; see tree_transform.h).
class VersionGraph {
 public:
  VersionGraph() = default;

  /// Creates the root version 0. Must be called on an empty graph.
  VersionId AddRoot();

  /// Adds a version derived from `parents` (first parent is the *primary*
  /// parent, against which the version's delta is expressed). All parents
  /// must already exist. Returns the new id.
  Result<VersionId> AddVersion(const std::vector<VersionId>& parents);

  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }

  const std::vector<VersionId>& parents(VersionId v) const {
    return nodes_[v].parents;
  }
  const std::vector<VersionId>& children(VersionId v) const {
    return nodes_[v].children;
  }
  /// The primary parent, or kInvalidVersion for the root.
  VersionId PrimaryParent(VersionId v) const;

  bool IsRoot(VersionId v) const { return v == 0 && !nodes_.empty(); }
  bool IsLeaf(VersionId v) const { return nodes_[v].children.empty(); }
  bool IsMerge(VersionId v) const { return nodes_[v].parents.size() > 1; }

  /// True if no version has more than one parent.
  bool IsTree() const;

  /// Distance from the root along primary parents.
  uint32_t Depth(VersionId v) const;
  /// Depth statistics over leaves, as reported in the dataset tables
  /// (paper Table 2, "Avg. depth").
  double AverageLeafDepth() const;
  uint32_t MaxDepth() const;

  std::vector<VersionId> Leaves() const;

  /// Versions in topological (== id) order.
  std::vector<VersionId> TopologicalOrder() const;

  /// The path root -> v following primary parents, inclusive.
  std::vector<VersionId> PathFromRoot(VersionId v) const;

  /// True if `ancestor` is on some parent path of `v` (DAG reachability;
  /// a version is its own ancestor).
  bool IsAncestor(VersionId ancestor, VersionId v) const;

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(Slice* input, VersionGraph* out);

  /// Structural invariants: a single parentless root (id 0), every parent id
  /// smaller than its child's (commit order is topological, which also
  /// proves acyclicity), no duplicate parents, parent/child adjacency lists
  /// that mirror each other, and depth = primary parent's depth + 1.
  /// Returns kCorruption describing the first violation.
  Status Validate() const;

  /// Graphviz DOT rendering of the graph (merge edges dashed), for
  /// visualizing branch structure: `dot -Tpng <(program) > graph.png`.
  std::string ToDot() const;

 private:
  struct Node {
    std::vector<VersionId> parents;
    std::vector<VersionId> children;
    uint32_t depth = 0;
  };
  std::vector<Node> nodes_;
};

}  // namespace rstore

#endif  // RSTORE_VERSION_VERSION_GRAPH_H_
