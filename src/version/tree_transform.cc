#include "version/tree_transform.h"

#include <vector>

#include "common/logging.h"

namespace rstore {

TreeTransformResult ConvertToTree(const VersionedDataset& dataset) {
  TreeTransformResult result;
  const VersionGraph& graph = dataset.graph;
  if (graph.empty()) return result;

  // Rebuild the graph keeping only primary edges.
  result.tree.graph.AddRoot();
  for (VersionId v = 1; v < graph.size(); ++v) {
    auto r = result.tree.graph.AddVersion({graph.PrimaryParent(v)});
    RSTORE_CHECK(r.ok() && *r == v) << "primary-edge rebuild diverged";
  }
  result.tree.deltas.resize(graph.size());

  // DFS over the primary tree carrying the renames active on the current
  // root-to-node path. A foreign key renamed at a merge must be referenced
  // by its new name in the merge's subtree, and by its original name
  // elsewhere, so renames are scoped with undo entries.
  std::unordered_map<CompositeKey, CompositeKey, CompositeKeyHash> active;
  struct Undo {
    CompositeKey original;
    bool had_previous;
    CompositeKey previous;
  };
  struct Frame {
    VersionId v;
    size_t next_child = 0;
    bool entered = false;
    std::vector<Undo> undos;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0, false, {}});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    VersionId v = frame.v;
    if (!frame.entered) {
      frame.entered = true;
      const VersionDelta& delta = dataset.deltas[v];
      VersionDelta& out = result.tree.deltas[v];
      out.added.reserve(delta.added.size());
      out.removed.reserve(delta.removed.size());
      // Removed keys may have been renamed by a merge higher on this path.
      for (const CompositeKey& ck : delta.removed) {
        auto it = active.find(ck);
        out.removed.push_back(it == active.end() ? ck : it->second);
      }
      for (const CompositeKey& ck : delta.added) {
        if (ck.version == v) {
          out.added.push_back(ck);
          continue;
        }
        // Foreign record from a non-primary branch: rename.
        CompositeKey renamed(ck.key, v);
        out.added.push_back(renamed);
        ++result.renamed_count;
        result.renames.emplace(renamed, ck);
        auto it = active.find(ck);
        if (it == active.end()) {
          frame.undos.push_back({ck, false, {}});
          active.emplace(ck, renamed);
        } else {
          frame.undos.push_back({ck, true, it->second});
          it->second = renamed;
        }
      }
    }
    const auto& children = graph.children(v);
    bool descended = false;
    while (frame.next_child < children.size()) {
      VersionId child = children[frame.next_child++];
      if (graph.PrimaryParent(child) == v) {
        stack.push_back({child, 0, false, {}});
        descended = true;
        break;
      }
    }
    if (descended) continue;
    for (auto it = frame.undos.rbegin(); it != frame.undos.rend(); ++it) {
      if (it->had_previous) {
        active[it->original] = it->previous;
      } else {
        active.erase(it->original);
      }
    }
    stack.pop_back();
  }
  return result;
}

}  // namespace rstore
