#include "version/version_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace rstore {

VersionId VersionGraph::AddRoot() {
  RSTORE_CHECK(nodes_.empty()) << "root already exists";
  nodes_.emplace_back();
  return 0;
}

Result<VersionId> VersionGraph::AddVersion(
    const std::vector<VersionId>& parents) {
  if (nodes_.empty()) {
    return Status::InvalidArgument("add the root version first");
  }
  if (parents.empty()) {
    return Status::InvalidArgument("non-root version needs a parent");
  }
  for (VersionId p : parents) {
    if (p >= nodes_.size()) {
      return Status::InvalidArgument("unknown parent version " +
                                     std::to_string(p));
    }
  }
  // Reject duplicate parents.
  std::vector<VersionId> sorted = parents;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("duplicate parent in merge");
  }
  VersionId id = static_cast<VersionId>(nodes_.size());
  Node node;
  node.parents = parents;
  node.depth = nodes_[parents[0]].depth + 1;
  nodes_.push_back(std::move(node));
  for (VersionId p : parents) nodes_[p].children.push_back(id);
  return id;
}

VersionId VersionGraph::PrimaryParent(VersionId v) const {
  RSTORE_DCHECK(v < nodes_.size());
  if (nodes_[v].parents.empty()) return kInvalidVersion;
  return nodes_[v].parents[0];
}

bool VersionGraph::IsTree() const {
  for (const Node& node : nodes_) {
    if (node.parents.size() > 1) return false;
  }
  return true;
}

uint32_t VersionGraph::Depth(VersionId v) const {
  RSTORE_DCHECK(v < nodes_.size());
  return nodes_[v].depth;
}

double VersionGraph::AverageLeafDepth() const {
  uint64_t total = 0;
  uint64_t leaves = 0;
  for (VersionId v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].children.empty()) {
      total += nodes_[v].depth;
      ++leaves;
    }
  }
  return leaves == 0 ? 0.0 : static_cast<double>(total) / leaves;
}

uint32_t VersionGraph::MaxDepth() const {
  uint32_t max_depth = 0;
  for (const Node& node : nodes_) max_depth = std::max(max_depth, node.depth);
  return max_depth;
}

std::vector<VersionId> VersionGraph::Leaves() const {
  std::vector<VersionId> out;
  for (VersionId v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].children.empty()) out.push_back(v);
  }
  return out;
}

std::vector<VersionId> VersionGraph::TopologicalOrder() const {
  std::vector<VersionId> order(nodes_.size());
  for (VersionId v = 0; v < nodes_.size(); ++v) order[v] = v;
  return order;
}

std::vector<VersionId> VersionGraph::PathFromRoot(VersionId v) const {
  RSTORE_DCHECK(v < nodes_.size());
  std::vector<VersionId> path;
  for (VersionId cur = v;; cur = nodes_[cur].parents[0]) {
    path.push_back(cur);
    if (nodes_[cur].parents.empty()) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool VersionGraph::IsAncestor(VersionId ancestor, VersionId v) const {
  RSTORE_DCHECK(ancestor < nodes_.size() && v < nodes_.size());
  if (ancestor > v) return false;  // ids are topological
  if (ancestor == v) return true;
  // DFS upward through all parents.
  std::vector<VersionId> stack{v};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    VersionId cur = stack.back();
    stack.pop_back();
    for (VersionId p : nodes_[cur].parents) {
      if (p == ancestor) return true;
      if (p > ancestor && !seen[p]) {
        seen[p] = true;
        stack.push_back(p);
      }
    }
  }
  return false;
}

void VersionGraph::EncodeTo(std::string* out) const {
  PutVarint64(out, nodes_.size());
  for (const Node& node : nodes_) {
    PutVarint64(out, node.parents.size());
    for (VersionId p : node.parents) PutVarint32(out, p);
  }
}

std::string VersionGraph::ToDot() const {
  std::string out = "digraph versions {\n  rankdir=TB;\n";
  for (VersionId v = 0; v < nodes_.size(); ++v) {
    out += "  V" + std::to_string(v);
    if (nodes_[v].children.empty()) {
      out += " [shape=doublecircle]";  // branch tips
    }
    out += ";\n";
  }
  for (VersionId v = 0; v < nodes_.size(); ++v) {
    const auto& parents = nodes_[v].parents;
    for (size_t p = 0; p < parents.size(); ++p) {
      out += "  V" + std::to_string(parents[p]) + " -> V" +
             std::to_string(v);
      if (p > 0) out += " [style=dashed]";  // non-primary merge edge
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

Status VersionGraph::Validate() const {
  for (VersionId v = 0; v < nodes_.size(); ++v) {
    const Node& node = nodes_[v];
    if (v == 0) {
      if (!node.parents.empty()) {
        return Status::Corruption("root version has parents");
      }
      if (node.depth != 0) return Status::Corruption("root depth nonzero");
    } else {
      if (node.parents.empty()) {
        return Status::Corruption("version " + std::to_string(v) +
                                  " has no parents (second root)");
      }
      for (VersionId p : node.parents) {
        // Parent ids smaller than the child's make every derivation edge
        // point backwards in commit order: no cycles are possible.
        if (p >= v) {
          return Status::Corruption("version " + std::to_string(v) +
                                    " has non-topological parent " +
                                    std::to_string(p));
        }
        if (std::count(node.parents.begin(), node.parents.end(), p) != 1) {
          return Status::Corruption("version " + std::to_string(v) +
                                    " has duplicate parent");
        }
        const std::vector<VersionId>& back = nodes_[p].children;
        if (std::count(back.begin(), back.end(), v) != 1) {
          return Status::Corruption("parent/child adjacency mismatch at " +
                                    std::to_string(v));
        }
      }
      if (node.depth != nodes_[node.parents[0]].depth + 1) {
        return Status::Corruption("depth of version " + std::to_string(v) +
                                  " inconsistent with primary parent");
      }
    }
    for (VersionId c : node.children) {
      if (c >= nodes_.size() || c <= v) {
        return Status::Corruption("version " + std::to_string(v) +
                                  " has invalid child");
      }
      const std::vector<VersionId>& fwd = nodes_[c].parents;
      if (std::find(fwd.begin(), fwd.end(), v) == fwd.end()) {
        return Status::Corruption("child/parent adjacency mismatch at " +
                                  std::to_string(v));
      }
    }
  }
  return Status::OK();
}

Status VersionGraph::DecodeFrom(Slice* input, VersionGraph* out) {
  uint64_t count;
  RSTORE_RETURN_IF_ERROR(GetVarint64(input, &count));
  if (count > input->size() + 1) {
    return Status::Corruption("graph version count exceeds input");
  }
  VersionGraph graph;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t parent_count;
    RSTORE_RETURN_IF_ERROR(GetVarint64(input, &parent_count));
    if (parent_count > input->size()) {
      return Status::Corruption("graph parent count exceeds input");
    }
    std::vector<VersionId> parents(parent_count);
    for (uint64_t j = 0; j < parent_count; ++j) {
      RSTORE_RETURN_IF_ERROR(GetVarint32(input, &parents[j]));
    }
    if (i == 0) {
      if (!parents.empty()) return Status::Corruption("root has parents");
      graph.AddRoot();
    } else {
      auto r = graph.AddVersion(parents);
      if (!r.ok()) return Status::Corruption("bad graph: " +
                                             r.status().message());
    }
  }
  RSTORE_DCHECK(graph.Validate().ok()) << "decoded graph fails validation";
  *out = std::move(graph);
  return Status::OK();
}

}  // namespace rstore
