#include "version/delta.h"

#include <unordered_set>

namespace rstore {

Status VersionDelta::CheckConsistent() const {
  std::unordered_set<CompositeKey, CompositeKeyHash> plus(added.begin(),
                                                          added.end());
  for (const CompositeKey& ck : removed) {
    if (plus.count(ck)) {
      return Status::InvalidArgument("inconsistent delta: " + ck.ToString() +
                                     " in both delta+ and delta-");
    }
  }
  return Status::OK();
}

VersionDelta VersionDelta::Inverse() const {
  VersionDelta inv;
  inv.added = removed;
  inv.removed = added;
  return inv;
}

void VersionDelta::EncodeTo(std::string* out) const {
  PutVarint64(out, added.size());
  for (const CompositeKey& ck : added) ck.EncodeTo(out);
  PutVarint64(out, removed.size());
  for (const CompositeKey& ck : removed) ck.EncodeTo(out);
}

Status VersionDelta::DecodeFrom(Slice* input, VersionDelta* out) {
  out->added.clear();
  out->removed.clear();
  // Decode incrementally: the count is untrusted input, so never allocate
  // `count` elements up front (every element costs >= 2 encoded bytes).
  auto decode_list = [&](std::vector<CompositeKey>* list) -> Status {
    uint64_t count;
    RSTORE_RETURN_IF_ERROR(GetVarint64(input, &count));
    if (count > input->size()) {
      return Status::Corruption("delta element count exceeds input");
    }
    list->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      CompositeKey ck;
      RSTORE_RETURN_IF_ERROR(CompositeKey::DecodeFrom(input, &ck));
      list->push_back(std::move(ck));
    }
    return Status::OK();
  };
  RSTORE_RETURN_IF_ERROR(decode_list(&out->added));
  return decode_list(&out->removed);
}

}  // namespace rstore
