#ifndef RSTORE_VERSION_TYPES_H_
#define RSTORE_VERSION_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "common/coding.h"
#include "common/hash.h"
#include "common/slice.h"

namespace rstore {

/// Dense version identifier, assigned in commit order: a version's parents
/// always have smaller ids. kInvalidVersion marks "no version".
using VersionId = uint32_t;
inline constexpr VersionId kInvalidVersion = UINT32_MAX;

/// The global record address: 〈primary key, version-id〉 (paper §2.1,
/// "Composite Keys"). The version component is the version in which this
/// record *originated* — an unchanged record keeps its composite key across
/// all descendant versions, which is what lets RStore store it once.
struct CompositeKey {
  std::string key;
  VersionId version = kInvalidVersion;

  CompositeKey() = default;
  CompositeKey(std::string k, VersionId v) : key(std::move(k)), version(v) {}

  bool operator==(const CompositeKey& other) const {
    return version == other.version && key == other.key;
  }
  bool operator!=(const CompositeKey& other) const {
    return !(*this == other);
  }
  bool operator<(const CompositeKey& other) const {
    return std::tie(key, version) < std::tie(other.key, other.version);
  }

  /// "K3@V1" display form.
  std::string ToString() const {
    return key + "@V" + std::to_string(version);
  }

  /// Binary form usable as a KVS key.
  void EncodeTo(std::string* out) const {
    PutLengthPrefixed(out, Slice(key));
    PutVarint32(out, version);
  }
  static Status DecodeFrom(Slice* input, CompositeKey* out) {
    Slice k;
    RSTORE_RETURN_IF_ERROR(GetLengthPrefixed(input, &k));
    uint32_t v;
    RSTORE_RETURN_IF_ERROR(GetVarint32(input, &v));
    out->key = k.ToString();
    out->version = v;
    return Status::OK();
  }

  uint64_t Hash() const {
    return Mix64(Fnv1a64(Slice(key)) ^ (static_cast<uint64_t>(version) << 1));
  }
};

struct CompositeKeyHash {
  size_t operator()(const CompositeKey& ck) const {
    return static_cast<size_t>(ck.Hash());
  }
};

}  // namespace rstore

#endif  // RSTORE_VERSION_TYPES_H_
